package solver

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"eotora/internal/rng"
)

func TestMinimize1DQuadratic(t *testing.T) {
	tests := []struct {
		name   string
		f      func(float64) float64
		lo, hi float64
		wantX  float64
	}{
		{name: "interior", f: func(x float64) float64 { return (x - 2) * (x - 2) }, lo: 0, hi: 10, wantX: 2},
		{name: "left boundary", f: func(x float64) float64 { return x * x }, lo: 1, hi: 5, wantX: 1},
		{name: "right boundary", f: func(x float64) float64 { return -x }, lo: 0, hi: 3, wantX: 3},
		{name: "degenerate interval", f: func(x float64) float64 { return x * x }, lo: 4, hi: 4, wantX: 4},
		{name: "abs value kink", f: math.Abs, lo: -3, hi: 5, wantX: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x, fx, err := Minimize1D(tt.f, tt.lo, tt.hi, 1e-10)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(x-tt.wantX) > 1e-6 {
				t.Errorf("x = %v, want %v", x, tt.wantX)
			}
			if math.Abs(fx-tt.f(tt.wantX)) > 1e-9 {
				t.Errorf("f(x) = %v, want %v", fx, tt.f(tt.wantX))
			}
		})
	}
}

func TestMinimize1DErrors(t *testing.T) {
	if _, _, err := Minimize1D(math.Abs, 5, 1, 0); err == nil {
		t.Error("inverted interval accepted")
	}
	if _, _, err := Minimize1D(math.Abs, math.NaN(), 1, 0); err == nil {
		t.Error("NaN bound accepted")
	}
}

func TestMinimizeConvexGrad(t *testing.T) {
	// f = (x−2)², f' = 2(x−2).
	grad := func(x float64) float64 { return 2 * (x - 2) }
	tests := []struct {
		name   string
		lo, hi float64
		want   float64
	}{
		{name: "interior", lo: 0, hi: 10, want: 2},
		{name: "clipped left", lo: 3, hi: 10, want: 3},
		{name: "clipped right", lo: -5, hi: 1, want: 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			x, err := MinimizeConvexGrad(grad, tt.lo, tt.hi, 1e-12)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(x-tt.want) > 1e-6 {
				t.Errorf("x = %v, want %v", x, tt.want)
			}
		})
	}
	if _, err := MinimizeConvexGrad(grad, 5, 1, 0); err == nil {
		t.Error("inverted interval accepted")
	}
}

// Property: golden-section and derivative bisection agree on random convex
// quadratics over random boxes.
func TestSolversAgreeProperty(t *testing.T) {
	src := rng.New(123)
	prop := func(seed int64) bool {
		a := src.Uniform(0.1, 10)
		b := src.Uniform(-20, 20)
		lo := src.Uniform(-10, 10)
		hi := lo + src.Uniform(0.1, 20)
		f := func(x float64) float64 { return a*x*x + b*x }
		grad := func(x float64) float64 { return 2*a*x + b }
		x1, _, err1 := Minimize1D(f, lo, hi, 1e-12)
		x2, err2 := MinimizeConvexGrad(grad, lo, hi, 1e-12)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(x1-x2) < 1e-5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCoordinateDescentSeparable(t *testing.T) {
	// f(x, y) = (x−1)² + (y+2)²: one sweep is exact.
	f := func(v []float64) float64 {
		return (v[0]-1)*(v[0]-1) + (v[1]+2)*(v[1]+2)
	}
	x, fx, err := CoordinateDescent(f, []float64{-10, -10}, []float64{10, 10}, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-1) > 1e-5 || math.Abs(x[1]+2) > 1e-5 {
		t.Errorf("x = %v, want [1 -2]", x)
	}
	if fx > 1e-9 {
		t.Errorf("f = %v, want ≈0", fx)
	}
}

func TestCoordinateDescentCoupled(t *testing.T) {
	// f(x, y) = x² + y² + xy − 3x: optimum x = 2, y = −1.
	f := func(v []float64) float64 {
		return v[0]*v[0] + v[1]*v[1] + v[0]*v[1] - 3*v[0]
	}
	x, _, err := CoordinateDescent(f, []float64{-10, -10}, []float64{10, 10}, 64, 1e-14)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-2) > 1e-3 || math.Abs(x[1]+1) > 1e-3 {
		t.Errorf("x = %v, want [2 -1]", x)
	}
}

func TestCoordinateDescentErrors(t *testing.T) {
	f := func(v []float64) float64 { return 0 }
	if _, _, err := CoordinateDescent(f, []float64{0, 0}, []float64{1}, 4, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := CoordinateDescent(f, []float64{2}, []float64{1}, 4, 0); err == nil {
		t.Error("inverted box accepted")
	}
	if _, got, err := CoordinateDescent(func([]float64) float64 { return 7 }, nil, nil, 4, 0); err != nil || got != 7 {
		t.Errorf("empty box: got %v, %v", got, err)
	}
}

// resUse is one (resource, weight) pair consumed by a strategy.
type resUse struct {
	res int
	p   float64
}

// qcap is a quadratic congestion assignment problem — the structure of the
// paper's P2-A: the objective is Σ_r m_r (Σ_{i uses r} p_{i,r})², exactly
// the reduced latency of equations (18)–(19).
type qcap struct {
	weights []float64
	use     [][][]resUse // [item][option] → resources used
	loads   []float64
	cost    float64
}

func (q *qcap) Items() int               { return len(q.use) }
func (q *qcap) OptionCount(item int) int { return len(q.use[item]) }
func (q *qcap) Cost() float64            { return q.cost }

func (q *qcap) Assign(item, option int) {
	for _, u := range q.use[item][option] {
		l := q.loads[u.res]
		q.cost += q.weights[u.res] * ((l+u.p)*(l+u.p) - l*l)
		q.loads[u.res] = l + u.p
	}
}

func (q *qcap) Unassign(item, option int) {
	for _, u := range q.use[item][option] {
		l := q.loads[u.res]
		q.cost -= q.weights[u.res] * (l*l - (l-u.p)*(l-u.p))
		q.loads[u.res] = l - u.p
	}
}

// LowerBound: each unassigned item will pay at least its cheapest marginal
// cost against the *current* loads, because loads only grow.
func (q *qcap) LowerBound(assigned int) float64 {
	total := 0.0
	for i := assigned; i < len(q.use); i++ {
		best := math.Inf(1)
		for _, opt := range q.use[i] {
			m := 0.0
			for _, u := range opt {
				l := q.loads[u.res]
				m += q.weights[u.res] * (u.p*u.p + 2*u.p*l)
			}
			if m < best {
				best = m
			}
		}
		total += best
	}
	return total
}

// objectiveOf recomputes the objective of a complete assignment from
// scratch, for validating the incremental bookkeeping.
func (q *qcap) objectiveOf(a Assignment) float64 {
	loads := make([]float64, len(q.weights))
	for i, o := range a {
		for _, u := range q.use[i][o] {
			loads[u.res] += u.p
		}
	}
	obj := 0.0
	for r, l := range loads {
		obj += q.weights[r] * l * l
	}
	return obj
}

// randomQCAP builds a random instance with the given size.
func randomQCAP(src *rng.Source, items, options, resources int) *qcap {
	q := &qcap{
		weights: make([]float64, resources),
		use:     make([][][]resUse, items),
		loads:   make([]float64, resources),
	}
	for r := range q.weights {
		q.weights[r] = src.Uniform(0.1, 2)
	}
	for i := range q.use {
		q.use[i] = make([][]resUse, options)
		for o := range q.use[i] {
			// Each option uses 1–3 distinct resources.
			maxUse := 3
			if resources < maxUse {
				maxUse = resources
			}
			n := 1 + src.Intn(maxUse)
			perm := src.Perm(resources)
			uses := make([]resUse, 0, n)
			for _, r := range perm[:n] {
				uses = append(uses, resUse{res: r, p: src.Uniform(0.1, 3)})
			}
			q.use[i][o] = uses
		}
	}
	return q
}

func TestBnBMatchesExhaustive(t *testing.T) {
	src := rng.New(99)
	for trial := 0; trial < 30; trial++ {
		q := randomQCAP(src, 2+src.Intn(5), 2+src.Intn(3), 3+src.Intn(3))
		ex, err := Exhaustive(q)
		if err != nil {
			t.Fatal(err)
		}
		bb, err := BranchAndBound(q, BnBConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if !bb.Optimal {
			t.Fatalf("trial %d: BnB not optimal without budget", trial)
		}
		if math.Abs(bb.Cost-ex.Cost) > 1e-9*(ex.Cost+1) {
			t.Fatalf("trial %d: BnB cost %v ≠ exhaustive %v", trial, bb.Cost, ex.Cost)
		}
		if got := q.objectiveOf(bb.Best); math.Abs(got-bb.Cost) > 1e-9*(got+1) {
			t.Fatalf("trial %d: reported cost %v ≠ recomputed %v", trial, bb.Cost, got)
		}
		if bb.Nodes > ex.Nodes*10 {
			t.Errorf("trial %d: BnB explored %d nodes vs %d exhaustive leaves — pruning broken?", trial, bb.Nodes, ex.Nodes)
		}
	}
}

func TestBnBWithIncumbent(t *testing.T) {
	src := rng.New(7)
	q := randomQCAP(src, 6, 3, 4)
	greedyAssign, greedyCost, err := Greedy(q)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := BranchAndBound(q, BnBConfig{Incumbent: greedyAssign, IncumbentCost: greedyCost})
	if err != nil {
		t.Fatal(err)
	}
	ex, err := Exhaustive(q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bb.Cost-ex.Cost) > 1e-9 {
		t.Errorf("warm-started BnB cost %v ≠ optimal %v", bb.Cost, ex.Cost)
	}
	if bb.Cost > greedyCost+1e-9 {
		t.Errorf("BnB worse than its incumbent: %v > %v", bb.Cost, greedyCost)
	}
}

func TestBnBNodeBudgetTruncation(t *testing.T) {
	src := rng.New(13)
	q := randomQCAP(src, 12, 4, 5)
	bb, err := BranchAndBound(q, BnBConfig{MaxNodes: 20})
	if err != nil {
		// With a tiny budget the search may terminate before any leaf;
		// an error is acceptable only if no incumbent was found.
		t.Skipf("budget too small to find any leaf: %v", err)
	}
	if bb.Optimal {
		t.Error("truncated search claims optimality")
	}
	if bb.Bound > bb.Cost+1e-9 {
		t.Errorf("bound %v exceeds incumbent cost %v", bb.Bound, bb.Cost)
	}
	// The bound must lower-bound the true optimum.
	ex, err := Exhaustive(q)
	if err != nil {
		t.Fatal(err)
	}
	if bb.Bound > ex.Cost+1e-9 {
		t.Errorf("truncated bound %v exceeds true optimum %v", bb.Bound, ex.Cost)
	}
	if bb.Cost < ex.Cost-1e-9 {
		t.Errorf("incumbent %v beats true optimum %v", bb.Cost, ex.Cost)
	}
	if bb.Gap() < 0 {
		t.Errorf("negative gap %v", bb.Gap())
	}
}

func TestBnBTimeLimit(t *testing.T) {
	src := rng.New(17)
	q := randomQCAP(src, 14, 5, 6)
	start := time.Now()
	bb, err := BranchAndBound(q, BnBConfig{
		TimeLimit: time.Millisecond,
		Incumbent: mustGreedy(t, q), IncumbentCost: greedyCost(t, q),
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("time-limited search ran %v", elapsed)
	}
	if bb.Best == nil {
		t.Error("no incumbent returned")
	}
}

func mustGreedy(t *testing.T, q *qcap) Assignment {
	t.Helper()
	a, _, err := Greedy(q)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func greedyCost(t *testing.T, q *qcap) float64 {
	t.Helper()
	_, c, err := Greedy(q)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGreedyRestoresState(t *testing.T) {
	src := rng.New(19)
	q := randomQCAP(src, 5, 3, 4)
	if _, _, err := Greedy(q); err != nil {
		t.Fatal(err)
	}
	// The push/pop bookkeeping is floating point; only rounding residue
	// may remain.
	if math.Abs(q.cost) > 1e-9 {
		t.Errorf("greedy left residual cost %v", q.cost)
	}
	for r, l := range q.loads {
		if math.Abs(l) > 1e-9 {
			t.Errorf("greedy left residual load %v on resource %d", l, r)
		}
	}
}

func TestGreedyIsFeasibleAndAboveOptimal(t *testing.T) {
	src := rng.New(23)
	for trial := 0; trial < 10; trial++ {
		q := randomQCAP(src, 5, 3, 4)
		a, cost, err := Greedy(q)
		if err != nil {
			t.Fatal(err)
		}
		if got := q.objectiveOf(a); math.Abs(got-cost) > 1e-9 {
			t.Fatalf("greedy reported %v, recomputed %v", cost, got)
		}
		ex, err := Exhaustive(q)
		if err != nil {
			t.Fatal(err)
		}
		if cost < ex.Cost-1e-9 {
			t.Fatalf("greedy %v beats optimal %v", cost, ex.Cost)
		}
	}
}

func TestBnBErrors(t *testing.T) {
	q := &qcap{
		weights: []float64{1},
		use:     [][][]resUse{{}}, // one item, zero options
		loads:   []float64{0},
	}
	if _, err := BranchAndBound(q, BnBConfig{}); err == nil {
		t.Error("item without options accepted")
	}
	if _, err := Exhaustive(q); err == nil {
		t.Error("exhaustive accepted item without options")
	}
	if _, _, err := Greedy(q); err == nil {
		t.Error("greedy accepted item without options")
	}
	ok := randomQCAP(rng.New(1), 3, 2, 3)
	if _, err := BranchAndBound(ok, BnBConfig{Incumbent: Assignment{0}}); err == nil {
		t.Error("short incumbent accepted")
	}
}

func TestBnBEmptyProblem(t *testing.T) {
	q := &qcap{weights: []float64{1}, loads: []float64{0}}
	res, err := BranchAndBound(q, BnBConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal || res.Cost != 0 || len(res.Best) != 0 {
		t.Errorf("empty problem result %+v", res)
	}
	exr, err := Exhaustive(q)
	if err != nil {
		t.Fatal(err)
	}
	if !exr.Optimal || exr.Cost != 0 {
		t.Errorf("empty exhaustive result %+v", exr)
	}
}

// Property: on random small instances, BnB with a greedy warm start is
// optimal and its assignment's recomputed objective matches.
func TestBnBProperty(t *testing.T) {
	src := rng.New(31)
	prop := func(seed int64) bool {
		q := randomQCAP(src, 2+src.Intn(4), 2+src.Intn(2), 2+src.Intn(3))
		inc, incCost, err := Greedy(q)
		if err != nil {
			return false
		}
		bb, err := BranchAndBound(q, BnBConfig{Incumbent: inc, IncumbentCost: incCost})
		if err != nil || !bb.Optimal {
			return false
		}
		ex, err := Exhaustive(q)
		if err != nil {
			return false
		}
		return math.Abs(bb.Cost-ex.Cost) <= 1e-9*(ex.Cost+1)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
