// Package stats provides the small numerical-statistics toolkit the EOTORA
// simulator needs: descriptive statistics, running aggregates, windowed
// time-series summaries, Pearson correlation, and least-squares polynomial
// fitting (used to fit the quadratic energy-consumption curve of Figure 3
// and to verify the linear backlog-versus-V relationship of Figure 8).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregate functions invoked on empty data.
var ErrEmpty = errors.New("stats: empty data")

// Mean returns the arithmetic mean of xs, or NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or NaN for empty input.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs, or NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It returns NaN for empty input
// and clamps q into [0, 1].
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Correlation returns the Pearson correlation coefficient of xs and ys.
// It returns an error when the lengths differ, the series are shorter than
// two points, or either series is constant.
func Correlation(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) {
		return 0, fmt.Errorf("stats: correlation length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return 0, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0, errors.New("stats: correlation of constant series")
	}
	return sxy / math.Sqrt(sxx*syy), nil
}

// LinearFit holds a least-squares line y = Slope*x + Intercept and its
// coefficient of determination.
type LinearFit struct {
	Slope     float64
	Intercept float64
	R2        float64
}

// FitLine performs ordinary least squares on (xs, ys).
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("stats: fit length mismatch %d vs %d", len(xs), len(ys))
	}
	if len(xs) < 2 {
		return LinearFit{}, ErrEmpty
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return LinearFit{}, errors.New("stats: fit with constant x")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	// R² = 1 − SS_res/SS_tot.
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - my) * (ys[i] - my)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LinearFit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// Polynomial is a polynomial in ascending-degree coefficient order:
// Coeffs[k] multiplies x^k.
type Polynomial struct {
	Coeffs []float64
}

// Eval evaluates the polynomial at x using Horner's rule.
func (p Polynomial) Eval(x float64) float64 {
	v := 0.0
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		v = v*x + p.Coeffs[i]
	}
	return v
}

// Degree returns the nominal degree of the polynomial (len(Coeffs)−1),
// or −1 for the empty polynomial.
func (p Polynomial) Degree() int { return len(p.Coeffs) - 1 }

// FitPolynomial performs least-squares fitting of a degree-d polynomial to
// (xs, ys) by solving the normal equations with partially pivoted Gaussian
// elimination. It needs at least d+1 points.
func FitPolynomial(xs, ys []float64, degree int) (Polynomial, error) {
	if degree < 0 {
		return Polynomial{}, fmt.Errorf("stats: negative degree %d", degree)
	}
	if len(xs) != len(ys) {
		return Polynomial{}, fmt.Errorf("stats: fit length mismatch %d vs %d", len(xs), len(ys))
	}
	n := degree + 1
	if len(xs) < n {
		return Polynomial{}, fmt.Errorf("stats: need at least %d points for degree %d, got %d", n, degree, len(xs))
	}
	// Build normal equations A c = b with A[j][k] = Σ x^(j+k), b[j] = Σ y x^j.
	a := make([][]float64, n)
	b := make([]float64, n)
	for j := 0; j < n; j++ {
		a[j] = make([]float64, n)
	}
	for i := range xs {
		pow := make([]float64, 2*n-1)
		pow[0] = 1
		for k := 1; k < len(pow); k++ {
			pow[k] = pow[k-1] * xs[i]
		}
		for j := 0; j < n; j++ {
			b[j] += ys[i] * pow[j]
			for k := 0; k < n; k++ {
				a[j][k] += pow[j+k]
			}
		}
	}
	coeffs, err := SolveLinear(a, b)
	if err != nil {
		return Polynomial{}, fmt.Errorf("stats: polynomial fit: %w", err)
	}
	return Polynomial{Coeffs: coeffs}, nil
}

// SolveLinear solves the dense linear system a·x = b in place using Gaussian
// elimination with partial pivoting. a must be square with len(a) == len(b).
// The inputs are copied; callers' slices are not modified.
func SolveLinear(a [][]float64, b []float64) ([]float64, error) {
	n := len(b)
	if len(a) != n {
		return nil, fmt.Errorf("stats: system shape mismatch: %d rows, %d rhs", len(a), n)
	}
	// Copy into an augmented matrix.
	m := make([][]float64, n)
	for i := range m {
		if len(a[i]) != n {
			return nil, fmt.Errorf("stats: row %d has %d columns, want %d", i, len(a[i]), n)
		}
		m[i] = make([]float64, n+1)
		copy(m[i], a[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-300 {
			return nil, errors.New("stats: singular system")
		}
		m[col], m[pivot] = m[pivot], m[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			factor := m[r][col] * inv
			if factor == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= factor * m[col][c]
			}
		}
	}
	// Back substitution.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		v := m[i][n]
		for c := i + 1; c < n; c++ {
			v -= m[i][c] * x[c]
		}
		x[i] = v / m[i][i]
	}
	return x, nil
}

// Running accumulates streaming first and second moments without storing
// the samples (Welford's algorithm). The zero value is ready to use.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates a sample.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// Count returns the number of samples seen.
func (r *Running) Count() int { return r.n }

// Mean returns the running mean, or NaN before any sample.
func (r *Running) Mean() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.mean
}

// Variance returns the running population variance, or NaN before any sample.
func (r *Running) Variance() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.m2 / float64(r.n)
}

// StdDev returns the running population standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// Min returns the smallest sample, or NaN before any sample.
func (r *Running) Min() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.min
}

// Max returns the largest sample, or NaN before any sample.
func (r *Running) Max() float64 {
	if r.n == 0 {
		return math.NaN()
	}
	return r.max
}

// WindowMeans splits xs into consecutive windows of the given size and
// returns the mean of each full window (a trailing partial window is
// dropped). The paper's Figure 9 reports 48-slot window averages.
func WindowMeans(xs []float64, window int) []float64 {
	if window <= 0 || len(xs) < window {
		return nil
	}
	out := make([]float64, 0, len(xs)/window)
	for i := 0; i+window <= len(xs); i += window {
		out = append(out, Mean(xs[i:i+window]))
	}
	return out
}

// Diff returns the first differences xs[i+1]−xs[i].
func Diff(xs []float64) []float64 {
	if len(xs) < 2 {
		return nil
	}
	out := make([]float64, len(xs)-1)
	for i := range out {
		out[i] = xs[i+1] - xs[i]
	}
	return out
}

// JainIndex returns Jain's fairness index (Σx)²/(n·Σx²) of a non-negative
// allocation: 1 for perfectly equal shares, 1/n for maximally unfair. It
// returns NaN for empty input and treats an all-zero allocation as fair.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum, sumsq float64
	for _, x := range xs {
		sum += x
		sumsq += x * x
	}
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sumsq)
}

// Autocorrelation returns the lag-k sample autocorrelation of xs, the
// standard tool for detecting periodicity in a time series (the Figure 7
// backlog oscillates with the daily price cycle, so its ACF peaks at the
// period lag). It returns NaN when the series is shorter than lag+2 or
// constant.
func Autocorrelation(xs []float64, lag int) float64 {
	if lag < 0 || len(xs) < lag+2 {
		return math.NaN()
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < len(xs); i++ {
		d := xs[i] - m
		den += d * d
		if i+lag < len(xs) {
			num += d * (xs[i+lag] - m)
		}
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}
