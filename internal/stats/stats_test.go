package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol
}

func TestMeanVariance(t *testing.T) {
	tests := []struct {
		name     string
		xs       []float64
		mean     float64
		variance float64
	}{
		{name: "constant", xs: []float64{5, 5, 5}, mean: 5, variance: 0},
		{name: "simple", xs: []float64{1, 2, 3, 4}, mean: 2.5, variance: 1.25},
		{name: "negative", xs: []float64{-2, 2}, mean: 0, variance: 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.xs); !almostEqual(got, tt.mean, 1e-12) {
				t.Errorf("Mean = %v, want %v", got, tt.mean)
			}
			if got := Variance(tt.xs); !almostEqual(got, tt.variance, 1e-12) {
				t.Errorf("Variance = %v, want %v", got, tt.variance)
			}
		})
	}
}

func TestEmptyInputsAreNaN(t *testing.T) {
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Variance(nil)) ||
		!math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) || !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("aggregate over empty input should be NaN")
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if got := Sum(xs); got != 9 {
		t.Errorf("Sum = %v, want 9", got)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{4, 1, 3, 2} // sorted: 1 2 3 4
	tests := []struct {
		q, want float64
	}{
		{0, 1},
		{1, 4},
		{0.5, 2.5},
		{-0.5, 1}, // clamped
		{1.5, 4},  // clamped
		{0.25, 1.75},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Error("Quantile mutated its input")
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	r, err := Correlation(xs, ys)
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Errorf("Correlation = %v, %v, want 1, nil", r, err)
	}
	neg := []float64{10, 8, 6, 4, 2}
	r, err = Correlation(xs, neg)
	if err != nil || !almostEqual(r, -1, 1e-12) {
		t.Errorf("anti Correlation = %v, %v, want -1, nil", r, err)
	}
	if _, err := Correlation(xs, []float64{1, 2}); err == nil {
		t.Error("length mismatch not detected")
	}
	if _, err := Correlation(xs, []float64{3, 3, 3, 3, 3}); err == nil {
		t.Error("constant series not detected")
	}
}

func TestFitLineExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(fit.Slope, 2, 1e-12) || !almostEqual(fit.Intercept, 1, 1e-12) {
		t.Errorf("fit = %+v, want slope 2 intercept 1", fit)
	}
	if !almostEqual(fit.R2, 1, 1e-12) {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{1}); err == nil {
		t.Error("single point fit should fail")
	}
	if _, err := FitLine([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant-x fit should fail")
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should fail")
	}
}

func TestPolynomialEval(t *testing.T) {
	p := Polynomial{Coeffs: []float64{1, -2, 3}} // 1 − 2x + 3x²
	tests := []struct {
		x, want float64
	}{
		{0, 1},
		{1, 2},
		{2, 9},
		{-1, 6},
	}
	for _, tt := range tests {
		if got := p.Eval(tt.x); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Eval(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
	if p.Degree() != 2 {
		t.Errorf("Degree = %d, want 2", p.Degree())
	}
	if (Polynomial{}).Degree() != -1 {
		t.Error("empty polynomial degree should be -1")
	}
}

func TestFitPolynomialRecoversQuadratic(t *testing.T) {
	// Paper Figure 3: power = a ω² + b ω + c. Verify exact recovery.
	truth := Polynomial{Coeffs: []float64{4.1, -1.3, 7.9}}
	var xs, ys []float64
	for x := 1.8; x <= 3.61; x += 0.2 {
		xs = append(xs, x)
		ys = append(ys, truth.Eval(x))
	}
	fit, err := FitPolynomial(xs, ys, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range truth.Coeffs {
		if !almostEqual(fit.Coeffs[i], c, 1e-6) {
			t.Errorf("coeff %d = %v, want %v", i, fit.Coeffs[i], c)
		}
	}
}

func TestFitPolynomialErrors(t *testing.T) {
	if _, err := FitPolynomial([]float64{1, 2}, []float64{1, 2}, -1); err == nil {
		t.Error("negative degree should fail")
	}
	if _, err := FitPolynomial([]float64{1, 2}, []float64{1, 2, 3}, 1); err == nil {
		t.Error("length mismatch should fail")
	}
	if _, err := FitPolynomial([]float64{1, 2}, []float64{1, 2}, 2); err == nil {
		t.Error("too few points should fail")
	}
}

func TestSolveLinear(t *testing.T) {
	// 2x + y = 5; x − y = 1 → x = 2, y = 1.
	x, err := SolveLinear([][]float64{{2, 1}, {1, -1}}, []float64{5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 2, 1e-12) || !almostEqual(x[1], 1, 1e-12) {
		t.Errorf("solution = %v, want [2 1]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	_, err := SolveLinear([][]float64{{1, 1}, {2, 2}}, []float64{1, 2})
	if err == nil {
		t.Error("singular system should fail")
	}
}

func TestSolveLinearShapeErrors(t *testing.T) {
	if _, err := SolveLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("row-count mismatch should fail")
	}
	if _, err := SolveLinear([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("ragged matrix should fail")
	}
}

func TestSolveLinearDoesNotMutateInputs(t *testing.T) {
	a := [][]float64{{2, 1}, {1, -1}}
	b := []float64{5, 1}
	if _, err := SolveLinear(a, b); err != nil {
		t.Fatal(err)
	}
	if a[0][0] != 2 || a[1][1] != -1 || b[0] != 5 {
		t.Error("SolveLinear mutated its inputs")
	}
}

func TestRunningMatchesBatch(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	if r.Count() != len(xs) {
		t.Errorf("Count = %d, want %d", r.Count(), len(xs))
	}
	if !almostEqual(r.Mean(), Mean(xs), 1e-12) {
		t.Errorf("running mean = %v, batch = %v", r.Mean(), Mean(xs))
	}
	if !almostEqual(r.Variance(), Variance(xs), 1e-9) {
		t.Errorf("running variance = %v, batch = %v", r.Variance(), Variance(xs))
	}
	if r.Min() != 1 || r.Max() != 9 {
		t.Errorf("running min/max = %v/%v, want 1/9", r.Min(), r.Max())
	}
}

func TestRunningEmpty(t *testing.T) {
	var r Running
	if !math.IsNaN(r.Mean()) || !math.IsNaN(r.Variance()) || !math.IsNaN(r.Min()) || !math.IsNaN(r.Max()) {
		t.Error("empty Running aggregates should be NaN")
	}
}

func TestWindowMeans(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7}
	got := WindowMeans(xs, 2)
	want := []float64{1.5, 3.5, 5.5} // trailing 7 dropped
	if len(got) != len(want) {
		t.Fatalf("WindowMeans = %v, want %v", got, want)
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Errorf("window %d = %v, want %v", i, got[i], want[i])
		}
	}
	if WindowMeans(xs, 0) != nil || WindowMeans(xs, 100) != nil {
		t.Error("degenerate windows should return nil")
	}
}

func TestDiff(t *testing.T) {
	got := Diff([]float64{1, 4, 2})
	if len(got) != 2 || got[0] != 3 || got[1] != -2 {
		t.Errorf("Diff = %v, want [3 -2]", got)
	}
	if Diff([]float64{1}) != nil {
		t.Error("Diff of single element should be nil")
	}
}

// Property: Welford running mean equals batch mean on arbitrary inputs.
func TestRunningMeanProperty(t *testing.T) {
	prop := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		var r Running
		for _, x := range xs {
			r.Add(x)
		}
		scale := math.Max(1, math.Abs(Mean(xs)))
		return almostEqual(r.Mean(), Mean(xs), 1e-9*scale)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q and bounded by min/max.
func TestQuantileProperty(t *testing.T) {
	prop := func(raw []float64, q1, q2 float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		a := math.Mod(math.Abs(q1), 1)
		b := math.Mod(math.Abs(q2), 1)
		if a > b {
			a, b = b, a
		}
		qa, qb := Quantile(xs, a), Quantile(xs, b)
		return qa <= qb && qa >= Min(xs) && qb <= Max(xs)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestJainIndex(t *testing.T) {
	tests := []struct {
		name string
		xs   []float64
		want float64
	}{
		{"equal shares", []float64{2, 2, 2, 2}, 1},
		{"one hog", []float64{1, 0, 0, 0}, 0.25},
		{"all zero treated fair", []float64{0, 0}, 1},
		{"two of four", []float64{1, 1, 0, 0}, 0.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := JainIndex(tt.xs); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("JainIndex = %v, want %v", got, tt.want)
			}
		})
	}
	if !math.IsNaN(JainIndex(nil)) {
		t.Error("empty index should be NaN")
	}
}

// Property: Jain's index is scale-invariant and within [1/n, 1].
func TestJainIndexProperty(t *testing.T) {
	prop := func(raw []float64, scale float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e100 {
				xs = append(xs, math.Abs(v))
			}
		}
		if len(xs) == 0 {
			return true
		}
		j := JainIndex(xs)
		if j < 1/float64(len(xs))-1e-9 || j > 1+1e-9 {
			return false
		}
		s := math.Abs(scale)
		if s == 0 || math.IsNaN(s) || s > 1e100 {
			return true
		}
		scaled := make([]float64, len(xs))
		for i := range xs {
			scaled[i] = xs[i] * s
		}
		return math.Abs(JainIndex(scaled)-j) < 1e-6
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestAutocorrelation(t *testing.T) {
	// A period-4 sawtooth has ACF ≈ 1 at lag 4 and negative at lag 2.
	var xs []float64
	for i := 0; i < 400; i++ {
		xs = append(xs, float64(i%4))
	}
	if got := Autocorrelation(xs, 0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("lag-0 ACF = %v, want 1", got)
	}
	if got := Autocorrelation(xs, 4); got < 0.9 {
		t.Errorf("lag-4 ACF = %v, want ≈1", got)
	}
	if got := Autocorrelation(xs, 2); got > -0.3 {
		t.Errorf("lag-2 ACF = %v, want strongly negative", got)
	}
	if !math.IsNaN(Autocorrelation(xs[:3], 4)) {
		t.Error("short series should be NaN")
	}
	if !math.IsNaN(Autocorrelation([]float64{5, 5, 5, 5}, 1)) {
		t.Error("constant series should be NaN")
	}
	if !math.IsNaN(Autocorrelation(xs, -1)) {
		t.Error("negative lag should be NaN")
	}
}
