package topology_test

import (
	"fmt"
	"log"

	"eotora/internal/rng"
	"eotora/internal/topology"
)

// ExampleGenerate builds the paper's Section VI-A deployment and inspects
// its connectivity.
func ExampleGenerate() {
	net, err := topology.Generate(topology.DefaultSpec(100), rng.New(42))
	if err != nil {
		log.Fatal(err)
	}
	stations, rooms, servers, devices := net.Counts()
	fmt.Printf("%d stations, %d rooms, %d servers, %d devices\n", stations, rooms, servers, devices)
	fmt.Println("servers reachable from bs-0:", len(net.ReachableServers(0)))
	fmt.Println("feasible:", net.CheckFeasible() == nil)
	// Output:
	// 6 stations, 2 rooms, 16 servers, 100 devices
	// servers reachable from bs-0: 8
	// feasible: true
}
