package topology

import (
	"bytes"
	"strings"
	"testing"

	"eotora/internal/rng"
)

// FuzzReadJSON checks the topology decoder never panics and that anything
// it accepts is a valid, finalized network.
func FuzzReadJSON(f *testing.F) {
	// Seed with a real serialized network plus malformed variants.
	net, err := Generate(DefaultSpec(3), rng.New(1))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.WriteJSON(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("{}")
	f.Add("[1,2,3]")
	f.Add(`{"base_stations": null}`)
	f.Add(strings.ReplaceAll(buf.String(), "low-band", "no-band"))
	f.Fuzz(func(t *testing.T, data string) {
		got, err := ReadJSON(strings.NewReader(data))
		if err != nil {
			return
		}
		// Accepted networks must be internally consistent.
		if err := got.CheckFeasible(); err != nil {
			// Feasibility is scenario-dependent, not a decoder invariant;
			// only structural validity is required here.
			_ = err
		}
		if got.ReachableServers(0) == nil && len(got.BaseStations) > 0 && len(got.BaseStations[0].Rooms) > 0 {
			// A finalized network with a connected station must resolve
			// its reachable servers (possibly empty only if the room has
			// no servers).
			if len(got.ServersInRoom(got.BaseStations[0].Rooms[0])) > 0 {
				t.Error("accepted network not finalized")
			}
		}
	})
}
