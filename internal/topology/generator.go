package topology

import (
	"fmt"

	"eotora/internal/rng"
	"eotora/internal/units"
)

// Layout selects how mid-band base stations are placed.
type Layout int

// Layouts.
const (
	// LayoutRandom scatters stations uniformly (the default; matches the
	// paper's random deployment).
	LayoutRandom Layout = iota
	// LayoutHex places mid-band stations on a hexagonal lattice centered
	// in the area — the classic cellular planning layout. Umbrella
	// stations remain random.
	LayoutHex
	// LayoutGrid places mid-band stations on a ⌈√n⌉-column rectangular
	// grid of cell centers spanning the whole area. Unlike LayoutHex
	// (which packs the n closest lattice points around the center), the
	// grid guarantees full-area coverage whenever the coverage radius is
	// at least half a cell diagonal — the property the umbrella-free
	// metro spec relies on.
	LayoutGrid
)

func (l Layout) String() string {
	switch l {
	case LayoutRandom:
		return "random"
	case LayoutHex:
		return "hex"
	case LayoutGrid:
		return "grid"
	default:
		return fmt.Sprintf("Layout(%d)", int(l))
	}
}

// Spec parameterizes the random scenario generator. The zero value is not
// usable; start from DefaultSpec (the paper's Section VI-A configuration)
// and override fields as needed.
type Spec struct {
	// Stations is K, the number of base stations.
	Stations int
	// Rooms is M, the number of edge-server rooms.
	Rooms int
	// ServersPerRoom is N_m for every room (the paper uses 8 per room).
	ServersPerRoom int
	// Devices is I, the number of mobile devices.
	Devices int

	// AreaSize is the side length (meters) of the square deployment area.
	AreaSize float64
	// UmbrellaStations is how many stations are low-band with coverage of
	// the whole area; the rest are mid-band. At least one umbrella station
	// guarantees every device always has a feasible choice, matching the
	// paper's implicit assumption that constraint (1)–(3) is satisfiable.
	UmbrellaStations int
	// MidBandRadius is the coverage radius (meters) of mid-band stations.
	MidBandRadius float64

	// AccessBandwidthMin/Max bound W_k^A (drawn uniformly; paper: 50–100 MHz).
	AccessBandwidthMin, AccessBandwidthMax units.Frequency
	// FronthaulBandwidthMin/Max bound W_k^F (paper: 0.5–1 GHz).
	FronthaulBandwidthMin, FronthaulBandwidthMax units.Frequency
	// FronthaulSE is h_k^F for every station (paper: 10 bps/Hz).
	FronthaulSE units.SpectralEfficiency
	// WirelessFronthaul, when true, gives every station millimeter-wave
	// fronthaul connected to every room instead of the paper's default of
	// wired fiber to one random room.
	WirelessFronthaul bool
	// NearestRoomFronthaul, when true, wires each station's fiber
	// fronthaul to the geographically nearest room instead of a random
	// one. Nearest-room wiring keeps the station–room graph local, so a
	// metro deployment factorizes into many resource-disjoint clusters
	// (see internal/shard). Ignored under WirelessFronthaul. The random
	// room pick is still drawn (and discarded) so every other draw
	// sequence — positions, bandwidths, devices, suitabilities — is
	// unchanged by the flag.
	NearestRoomFronthaul bool

	// SmallCores/LargeCores are the two server sizes (paper: 64 and 128,
	// half of the servers each).
	SmallCores, LargeCores int
	// FreqMin/FreqMax are the per-core clock bounds (paper: i7-3770K
	// range, 1.8–3.6 GHz).
	FreqMin, FreqMax units.Frequency

	// SuitabilityMin/Max bound σ_{i,n} (paper: 0.5–1).
	SuitabilityMin, SuitabilityMax float64

	// DeviceSpeedMax is the maximum mobility speed (m/s); speeds are drawn
	// uniformly from [0, DeviceSpeedMax].
	DeviceSpeedMax float64

	// Layout places the mid-band stations (LayoutRandom, LayoutHex, or
	// LayoutGrid).
	Layout Layout
	// RoomGrid, when true, places rooms on a ⌈√M⌉-column grid of cell
	// centers spanning the area instead of the default single row across
	// the middle. Room placement never consumes generator draws, so this
	// has no effect on any random sequence.
	RoomGrid bool
}

// DefaultSpec returns the paper's Section VI-A simulation configuration:
// six base stations, two server rooms with eight servers each, mid-band
// n77 access links of 50–100 MHz, wired 0.5–1 GHz fronthaul at 10 bps/Hz,
// 64/128-core servers clocked 1.8–3.6 GHz, and suitabilities in [0.5, 1].
func DefaultSpec(devices int) Spec {
	return Spec{
		Stations:              6,
		Rooms:                 2,
		ServersPerRoom:        8,
		Devices:               devices,
		AreaSize:              2000,
		UmbrellaStations:      2,
		MidBandRadius:         600,
		AccessBandwidthMin:    50 * units.MHz,
		AccessBandwidthMax:    100 * units.MHz,
		FronthaulBandwidthMin: 500 * units.MHz,
		FronthaulBandwidthMax: 1000 * units.MHz,
		FronthaulSE:           10,
		SmallCores:            64,
		LargeCores:            128,
		FreqMin:               1.8 * units.GHz,
		FreqMax:               3.6 * units.GHz,
		SuitabilityMin:        0.5,
		SuitabilityMax:        1.0,
		DeviceSpeedMax:        1.5, // pedestrian
	}
}

// Validate reports whether the spec is internally consistent.
func (s Spec) Validate() error {
	switch {
	case s.Stations <= 0:
		return fmt.Errorf("topology: spec needs at least one station, got %d", s.Stations)
	case s.Rooms <= 0:
		return fmt.Errorf("topology: spec needs at least one room, got %d", s.Rooms)
	case s.ServersPerRoom <= 0:
		return fmt.Errorf("topology: spec needs servers per room > 0, got %d", s.ServersPerRoom)
	case s.Devices <= 0:
		return fmt.Errorf("topology: spec needs at least one device, got %d", s.Devices)
	case s.AreaSize <= 0:
		return fmt.Errorf("topology: spec needs positive area, got %v", s.AreaSize)
	case s.UmbrellaStations < 0 || s.UmbrellaStations > s.Stations:
		return fmt.Errorf("topology: umbrella stations %d outside [0, %d]", s.UmbrellaStations, s.Stations)
	case s.UmbrellaStations < s.Stations && s.MidBandRadius <= 0:
		return fmt.Errorf("topology: mid-band stations need positive radius, got %v", s.MidBandRadius)
	case s.AccessBandwidthMin <= 0 || s.AccessBandwidthMax < s.AccessBandwidthMin:
		return fmt.Errorf("topology: invalid access bandwidth range [%v, %v]", s.AccessBandwidthMin, s.AccessBandwidthMax)
	case s.FronthaulBandwidthMin <= 0 || s.FronthaulBandwidthMax < s.FronthaulBandwidthMin:
		return fmt.Errorf("topology: invalid fronthaul bandwidth range [%v, %v]", s.FronthaulBandwidthMin, s.FronthaulBandwidthMax)
	case s.FronthaulSE <= 0:
		return fmt.Errorf("topology: invalid fronthaul spectral efficiency %v", s.FronthaulSE)
	case s.SmallCores <= 0 || s.LargeCores <= 0:
		return fmt.Errorf("topology: invalid core counts %d/%d", s.SmallCores, s.LargeCores)
	case s.FreqMin <= 0 || s.FreqMax < s.FreqMin:
		return fmt.Errorf("topology: invalid frequency range [%v, %v]", s.FreqMin, s.FreqMax)
	case s.SuitabilityMin <= 0 || s.SuitabilityMax > 1 || s.SuitabilityMax < s.SuitabilityMin:
		return fmt.Errorf("topology: invalid suitability range [%v, %v]", s.SuitabilityMin, s.SuitabilityMax)
	case s.DeviceSpeedMax < 0:
		return fmt.Errorf("topology: negative device speed %v", s.DeviceSpeedMax)
	}
	return nil
}

// Generate builds a random network from the spec using the given random
// stream. The returned network is finalized and feasibility-checked.
func Generate(spec Spec, src *rng.Source) (*Network, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	n := &Network{}

	// Rooms sit at fixed fractions of the area so mid-band stations near
	// either room have plausible fronthaul distances. Under RoomGrid they
	// spread over a 2-D grid instead of a row. Neither placement consumes
	// generator draws.
	roomGrid := gridLattice(spec.AreaSize, spec.Rooms)
	for m := 0; m < spec.Rooms; m++ {
		pos := Point{X: (float64(m) + 0.5) / float64(spec.Rooms) * spec.AreaSize, Y: 0.5 * spec.AreaSize}
		if spec.RoomGrid {
			pos = roomGrid[m]
		}
		n.Rooms = append(n.Rooms, Room{
			ID:   m,
			Name: fmt.Sprintf("room-%d", m),
			Pos:  pos,
		})
	}

	// Base stations: the first UmbrellaStations are low-band with coverage
	// of the whole area (radius = area diagonal); the rest are mid-band,
	// placed per spec.Layout.
	diag := spec.AreaSize * 1.4143 // ≥ diagonal of the square
	hexPositions := hexLattice(spec.AreaSize, spec.MidBandRadius, spec.Stations-spec.UmbrellaStations)
	gridPositions := gridLattice(spec.AreaSize, spec.Stations-spec.UmbrellaStations)
	for k := 0; k < spec.Stations; k++ {
		bs := BaseStation{
			ID:                 k,
			Name:               fmt.Sprintf("bs-%d", k),
			Pos:                Point{X: src.Uniform(0, spec.AreaSize), Y: src.Uniform(0, spec.AreaSize)},
			AccessBandwidth:    units.Frequency(src.Uniform(float64(spec.AccessBandwidthMin), float64(spec.AccessBandwidthMax))),
			FronthaulBandwidth: units.Frequency(src.Uniform(float64(spec.FronthaulBandwidthMin), float64(spec.FronthaulBandwidthMax))),
			FronthaulSE:        spec.FronthaulSE,
		}
		if k < spec.UmbrellaStations {
			bs.Band = LowBand
			bs.CoverageRadius = diag
		} else {
			bs.Band = MidBand
			bs.CoverageRadius = spec.MidBandRadius
			switch spec.Layout {
			case LayoutHex:
				bs.Pos = hexPositions[k-spec.UmbrellaStations]
			case LayoutGrid:
				bs.Pos = gridPositions[k-spec.UmbrellaStations]
			}
		}
		if spec.WirelessFronthaul {
			bs.Fronthaul = WirelessMMWave
			bs.Rooms = make([]int, spec.Rooms)
			for m := range bs.Rooms {
				bs.Rooms[m] = m
			}
		} else {
			bs.Fronthaul = WiredFiber
			room := src.Intn(spec.Rooms)
			if spec.NearestRoomFronthaul {
				// The random pick above is drawn regardless so the flag
				// perturbs no other sequence.
				room = 0
				for m := 1; m < spec.Rooms; m++ {
					if bs.Pos.DistanceTo(n.Rooms[m].Pos) < bs.Pos.DistanceTo(n.Rooms[room].Pos) {
						room = m
					}
				}
			}
			bs.Rooms = []int{room}
		}
		n.BaseStations = append(n.BaseStations, bs)
	}

	// Servers: half small-core, half large-core within each room, with the
	// odd server (if any) small.
	id := 0
	for m := 0; m < spec.Rooms; m++ {
		for j := 0; j < spec.ServersPerRoom; j++ {
			cores := spec.SmallCores
			if j >= (spec.ServersPerRoom+1)/2 {
				cores = spec.LargeCores
			}
			n.Servers = append(n.Servers, Server{
				ID:      id,
				Name:    fmt.Sprintf("srv-%d-%d", m, j),
				Room:    m,
				Cores:   cores,
				MinFreq: spec.FreqMin,
				MaxFreq: spec.FreqMax,
			})
			id++
		}
	}

	// Devices: uniform positions, uniform speeds.
	for i := 0; i < spec.Devices; i++ {
		n.Devices = append(n.Devices, Device{
			ID:    i,
			Name:  fmt.Sprintf("md-%d", i),
			Pos:   Point{X: src.Uniform(0, spec.AreaSize), Y: src.Uniform(0, spec.AreaSize)},
			Speed: src.Uniform(0, spec.DeviceSpeedMax),
		})
	}

	// Suitability σ_{i,n} ~ U[min, max].
	n.Suitability = make([][]float64, spec.Devices)
	for i := range n.Suitability {
		row := make([]float64, len(n.Servers))
		for j := range row {
			row[j] = src.Uniform(spec.SuitabilityMin, spec.SuitabilityMax)
		}
		n.Suitability[i] = row
	}

	if err := n.Finalize(); err != nil {
		return nil, fmt.Errorf("topology: generated network invalid: %w", err)
	}
	if err := n.CheckFeasible(); err != nil {
		return nil, err
	}
	return n, nil
}

// hexLattice returns n lattice points of a hexagonal grid with spacing
// √3·radius (adjacent cells just overlap), ordered by distance from the
// area center so the densest coverage sits in the middle — the classic
// cellular planning layout.
func hexLattice(area, radius float64, n int) []Point {
	if n <= 0 {
		return nil
	}
	if radius <= 0 {
		radius = area / 4
	}
	center := Point{X: area / 2, Y: area / 2}
	spacing := radius * 1.7320508 // √3
	// Generate a grid generously larger than needed, then take the n
	// points closest to the center.
	rings := 1
	for (2*rings+1)*(2*rings+1) < 4*n+9 {
		rings++
	}
	var pts []Point
	for row := -rings; row <= rings; row++ {
		offset := 0.0
		if row%2 != 0 {
			offset = spacing / 2
		}
		for col := -rings; col <= rings; col++ {
			pts = append(pts, Point{
				X: center.X + float64(col)*spacing + offset,
				Y: center.Y + float64(row)*spacing*0.8660254, // √3/2
			})
		}
	}
	// Selection sort the n closest points (n is small).
	for i := 0; i < n && i < len(pts); i++ {
		best := i
		for j := i + 1; j < len(pts); j++ {
			if center.DistanceTo(pts[j]) < center.DistanceTo(pts[best]) {
				best = j
			}
		}
		pts[i], pts[best] = pts[best], pts[i]
	}
	if n > len(pts) {
		n = len(pts)
	}
	return pts[:n]
}

// gridLattice returns n cell centers of a ⌈√n⌉-column rectangular grid
// tiling the square area: cols = ⌈√n⌉, rows = ⌈n/cols⌉, point i at the
// center of cell (i%cols, i/cols). Every point of the area lies within
// half a cell diagonal of some center, so a coverage radius of at least
// 0.5·√((area/cols)² + (area/rows)²) covers the whole area.
func gridLattice(area float64, n int) []Point {
	if n <= 0 {
		return nil
	}
	cols := 1
	for cols*cols < n {
		cols++
	}
	rows := (n + cols - 1) / cols
	w := area / float64(cols)
	h := area / float64(rows)
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{
			X: (float64(i%cols) + 0.5) * w,
			Y: (float64(i/cols) + 0.5) * h,
		}
	}
	return pts
}

// UrbanSpec is a dense city deployment: more, smaller mid-band cells over
// a compact area, faster devices (vehicles mixed with pedestrians), and
// all large-core servers in more rooms.
func UrbanSpec(devices int) Spec {
	s := DefaultSpec(devices)
	s.Stations = 10
	s.UmbrellaStations = 2
	s.AreaSize = 1500
	s.MidBandRadius = 350
	s.Rooms = 4
	s.ServersPerRoom = 4
	s.DeviceSpeedMax = 8 // mixed pedestrian/vehicular
	s.Layout = LayoutHex
	return s
}

// RuralSpec is a sparse deployment: few wide low-band cells over a large
// area, a single server room, slower channel quality (longer distances
// are captured by the larger coverage radius feeding the distance-based
// channel model).
func RuralSpec(devices int) Spec {
	s := DefaultSpec(devices)
	s.Stations = 3
	s.UmbrellaStations = 3 // all low-band
	s.AreaSize = 8000
	s.Rooms = 1
	s.ServersPerRoom = 8
	s.DeviceSpeedMax = 15 // vehicular
	return s
}

// CampusSpec is a single-site deployment: one umbrella plus dense small
// cells, one well-provisioned room with wireless fronthaul everywhere.
func CampusSpec(devices int) Spec {
	s := DefaultSpec(devices)
	s.Stations = 8
	s.UmbrellaStations = 1
	s.AreaSize = 800
	s.MidBandRadius = 200
	s.Rooms = 1
	s.ServersPerRoom = 12
	s.WirelessFronthaul = true
	s.Layout = LayoutHex
	return s
}

// MetroSpec is the metro-scale deployment the sharded slot solver (DESIGN
// §13) targets: a 7×7 grid of mid-band cells over a 5 km square with no
// umbrella stations (an umbrella would put every device in every cluster
// and defeat sharding), a 5×5 grid of small server rooms, and
// nearest-room fiber fronthaul so the station–room graph decomposes into
// many resource-disjoint clusters. The 520 m radius sits just above the
// grid's ~505 m coverage bound (half a cell diagonal), so every device is
// covered yet the multi-coverage overlap — the boundary set the sharded
// solve reconciles serially — stays a small fraction of the population.
// Mixed pedestrian/vehicular mobility.
func MetroSpec(devices int) Spec {
	s := DefaultSpec(devices)
	s.Stations = 49
	s.UmbrellaStations = 0
	s.AreaSize = 5000
	s.MidBandRadius = 520
	s.Rooms = 25
	s.ServersPerRoom = 4
	s.Layout = LayoutGrid
	s.RoomGrid = true
	s.NearestRoomFronthaul = true
	s.DeviceSpeedMax = 8
	return s
}

// SpecByName resolves a scenario preset by its CLI name: "default",
// "urban", "rural", "campus", or "metro".
func SpecByName(name string, devices int) (Spec, error) {
	switch name {
	case "", "default":
		return DefaultSpec(devices), nil
	case "urban":
		return UrbanSpec(devices), nil
	case "rural":
		return RuralSpec(devices), nil
	case "campus":
		return CampusSpec(devices), nil
	case "metro":
		return MetroSpec(devices), nil
	}
	return Spec{}, fmt.Errorf("topology: unknown preset %q (want default, urban, rural, campus, or metro)", name)
}
