package topology

import (
	"encoding/json"
	"fmt"
	"io"

	"eotora/internal/units"
)

// networkJSON is the serialized form of a Network. The wire format uses
// explicit field names and plain numbers so files stay readable and
// stable across refactors of the in-memory types.
type networkJSON struct {
	BaseStations []stationJSON `json:"base_stations"`
	Rooms        []roomJSON    `json:"rooms"`
	Servers      []serverJSON  `json:"servers"`
	Devices      []deviceJSON  `json:"devices"`
	Suitability  [][]float64   `json:"suitability"`
}

type stationJSON struct {
	ID                   int     `json:"id"`
	Name                 string  `json:"name,omitempty"`
	Band                 string  `json:"band"`
	X                    float64 `json:"x"`
	Y                    float64 `json:"y"`
	CoverageRadius       float64 `json:"coverage_radius_m"`
	AccessBandwidthHz    float64 `json:"access_bandwidth_hz"`
	FronthaulBandwidthHz float64 `json:"fronthaul_bandwidth_hz"`
	FronthaulSE          float64 `json:"fronthaul_se_bps_hz"`
	Fronthaul            string  `json:"fronthaul"`
	Rooms                []int   `json:"rooms"`
}

type roomJSON struct {
	ID   int     `json:"id"`
	Name string  `json:"name,omitempty"`
	X    float64 `json:"x"`
	Y    float64 `json:"y"`
}

type serverJSON struct {
	ID        int     `json:"id"`
	Name      string  `json:"name,omitempty"`
	Room      int     `json:"room"`
	Cores     int     `json:"cores"`
	MinFreqHz float64 `json:"min_freq_hz"`
	MaxFreqHz float64 `json:"max_freq_hz"`
}

type deviceJSON struct {
	ID    int     `json:"id"`
	Name  string  `json:"name,omitempty"`
	X     float64 `json:"x"`
	Y     float64 `json:"y"`
	Speed float64 `json:"speed_mps"`
}

func bandToString(b BandClass) string { return b.String() }

func bandFromString(s string) (BandClass, error) {
	switch s {
	case "low-band":
		return LowBand, nil
	case "mid-band":
		return MidBand, nil
	case "high-band":
		return HighBand, nil
	default:
		return 0, fmt.Errorf("topology: unknown band %q", s)
	}
}

func fronthaulToString(f FronthaulKind) string { return f.String() }

func fronthaulFromString(s string) (FronthaulKind, error) {
	switch s {
	case "wired-fiber":
		return WiredFiber, nil
	case "wireless-mmwave":
		return WirelessMMWave, nil
	default:
		return 0, fmt.Errorf("topology: unknown fronthaul %q", s)
	}
}

// WriteJSON serializes the network as indented JSON.
func (n *Network) WriteJSON(w io.Writer) error {
	out := networkJSON{Suitability: n.Suitability}
	for _, bs := range n.BaseStations {
		out.BaseStations = append(out.BaseStations, stationJSON{
			ID:                   bs.ID,
			Name:                 bs.Name,
			Band:                 bandToString(bs.Band),
			X:                    bs.Pos.X,
			Y:                    bs.Pos.Y,
			CoverageRadius:       bs.CoverageRadius,
			AccessBandwidthHz:    bs.AccessBandwidth.Hertz(),
			FronthaulBandwidthHz: bs.FronthaulBandwidth.Hertz(),
			FronthaulSE:          bs.FronthaulSE.BpsPerHz(),
			Fronthaul:            fronthaulToString(bs.Fronthaul),
			Rooms:                bs.Rooms,
		})
	}
	for _, r := range n.Rooms {
		out.Rooms = append(out.Rooms, roomJSON{ID: r.ID, Name: r.Name, X: r.Pos.X, Y: r.Pos.Y})
	}
	for _, s := range n.Servers {
		out.Servers = append(out.Servers, serverJSON{
			ID: s.ID, Name: s.Name, Room: s.Room, Cores: s.Cores,
			MinFreqHz: s.MinFreq.Hertz(), MaxFreqHz: s.MaxFreq.Hertz(),
		})
	}
	for _, d := range n.Devices {
		out.Devices = append(out.Devices, deviceJSON{
			ID: d.ID, Name: d.Name, X: d.Pos.X, Y: d.Pos.Y, Speed: d.Speed,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON deserializes a network written by WriteJSON and finalizes it,
// so the result is validated and ready to use.
func ReadJSON(r io.Reader) (*Network, error) {
	var in networkJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("topology: decoding network JSON: %w", err)
	}
	n := &Network{Suitability: in.Suitability}
	for _, bs := range in.BaseStations {
		band, err := bandFromString(bs.Band)
		if err != nil {
			return nil, err
		}
		fh, err := fronthaulFromString(bs.Fronthaul)
		if err != nil {
			return nil, err
		}
		n.BaseStations = append(n.BaseStations, BaseStation{
			ID:                 bs.ID,
			Name:               bs.Name,
			Band:               band,
			Pos:                Point{X: bs.X, Y: bs.Y},
			CoverageRadius:     bs.CoverageRadius,
			AccessBandwidth:    units.Frequency(bs.AccessBandwidthHz),
			FronthaulBandwidth: units.Frequency(bs.FronthaulBandwidthHz),
			FronthaulSE:        units.SpectralEfficiency(bs.FronthaulSE),
			Fronthaul:          fh,
			Rooms:              bs.Rooms,
		})
	}
	for _, room := range in.Rooms {
		n.Rooms = append(n.Rooms, Room{ID: room.ID, Name: room.Name, Pos: Point{X: room.X, Y: room.Y}})
	}
	for _, s := range in.Servers {
		n.Servers = append(n.Servers, Server{
			ID: s.ID, Name: s.Name, Room: s.Room, Cores: s.Cores,
			MinFreq: units.Frequency(s.MinFreqHz), MaxFreq: units.Frequency(s.MaxFreqHz),
		})
	}
	for _, d := range in.Devices {
		n.Devices = append(n.Devices, Device{
			ID: d.ID, Name: d.Name, Pos: Point{X: d.X, Y: d.Y}, Speed: d.Speed,
		})
	}
	if err := n.Finalize(); err != nil {
		return nil, err
	}
	return n, nil
}
