package topology

import (
	"bytes"
	"strings"
	"testing"

	"eotora/internal/rng"
)

func TestJSONRoundtrip(t *testing.T) {
	orig, err := Generate(DefaultSpec(12), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}

	k1, m1, n1, i1 := orig.Counts()
	k2, m2, n2, i2 := got.Counts()
	if k1 != k2 || m1 != m2 || n1 != n2 || i1 != i2 {
		t.Fatalf("counts changed: (%d,%d,%d,%d) → (%d,%d,%d,%d)", k1, m1, n1, i1, k2, m2, n2, i2)
	}
	for k := range orig.BaseStations {
		a, b := orig.BaseStations[k], got.BaseStations[k]
		if a.Band != b.Band || a.Pos != b.Pos || a.CoverageRadius != b.CoverageRadius ||
			a.AccessBandwidth != b.AccessBandwidth || a.FronthaulBandwidth != b.FronthaulBandwidth ||
			a.FronthaulSE != b.FronthaulSE || a.Fronthaul != b.Fronthaul || len(a.Rooms) != len(b.Rooms) {
			t.Errorf("station %d changed: %+v → %+v", k, a, b)
		}
	}
	for n := range orig.Servers {
		a, b := orig.Servers[n], got.Servers[n]
		if a.Room != b.Room || a.Cores != b.Cores || a.MinFreq != b.MinFreq || a.MaxFreq != b.MaxFreq {
			t.Errorf("server %d changed: %+v → %+v", n, a, b)
		}
	}
	for i := range orig.Devices {
		if orig.Devices[i].Pos != got.Devices[i].Pos || orig.Devices[i].Speed != got.Devices[i].Speed {
			t.Errorf("device %d changed", i)
		}
	}
	for i := range orig.Suitability {
		for j := range orig.Suitability[i] {
			if orig.Suitability[i][j] != got.Suitability[i][j] {
				t.Fatalf("suitability[%d][%d] changed", i, j)
			}
		}
	}
	// Roundtrip result must be finalized: connectivity caches usable.
	if got.ReachableServers(0) == nil {
		t.Error("roundtripped network not finalized")
	}
}

func TestReadJSONErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"garbage", "{not json"},
		{"unknown field", `{"bogus": 1}`},
		{"unknown band", `{"base_stations":[{"id":0,"band":"x-band","fronthaul":"wired-fiber","rooms":[0]}],"rooms":[{"id":0}],"servers":[],"devices":[],"suitability":[]}`},
		{"unknown fronthaul", `{"base_stations":[{"id":0,"band":"low-band","fronthaul":"carrier-pigeon","rooms":[0]}],"rooms":[{"id":0}],"servers":[],"devices":[],"suitability":[]}`},
		{"fails validation", `{"base_stations":[],"rooms":[],"servers":[],"devices":[],"suitability":[]}`},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := ReadJSON(strings.NewReader(tt.in)); err == nil {
				t.Error("ReadJSON accepted invalid input")
			}
		})
	}
}

func TestJSONStableFieldNames(t *testing.T) {
	// The wire format is a contract; spot-check key field names.
	net, err := Generate(DefaultSpec(3), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := net.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"base_stations"`, `"access_bandwidth_hz"`, `"fronthaul_se_bps_hz"`,
		`"coverage_radius_m"`, `"min_freq_hz"`, `"suitability"`, `"speed_mps"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("serialized network missing %s", want)
		}
	}
}
