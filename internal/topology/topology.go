// Package topology models the heterogeneous mobile-edge-computing network
// of the paper's Section III-A: base stations with access and fronthaul
// links, edge-server rooms hosting server clusters, edge servers with
// tunable clock frequencies, and mobile devices.
//
// The topology is static: geometry, bandwidths, fronthaul wiring, server
// core counts, and frequency ranges do not change over time. Everything
// time-varying (channel conditions, task sizes, data lengths, prices) lives
// in package trace.
package topology

import (
	"errors"
	"fmt"
	"math"

	"eotora/internal/units"
)

// BandClass is the spectrum band a base station operates in. It determines
// the typical coverage radius: low-band 5G (< 1 GHz) covers miles, mid-band
// (1–5 GHz) covers on the order of a hundred meters.
type BandClass int

// Band classes.
const (
	LowBand BandClass = iota + 1
	MidBand
	HighBand
)

func (b BandClass) String() string {
	switch b {
	case LowBand:
		return "low-band"
	case MidBand:
		return "mid-band"
	case HighBand:
		return "high-band"
	default:
		return fmt.Sprintf("BandClass(%d)", int(b))
	}
}

// FronthaulKind is the physical medium of a base station's fronthaul link.
// Wired fiber fronthaul connects a base station to exactly one server room;
// wireless millimeter-wave fronthaul may reach several rooms.
type FronthaulKind int

// Fronthaul kinds.
const (
	WiredFiber FronthaulKind = iota + 1
	WirelessMMWave
)

func (f FronthaulKind) String() string {
	switch f {
	case WiredFiber:
		return "wired-fiber"
	case WirelessMMWave:
		return "wireless-mmwave"
	default:
		return fmt.Sprintf("FronthaulKind(%d)", int(f))
	}
}

// Point is a planar position in meters.
type Point struct {
	X, Y float64
}

// DistanceTo returns the Euclidean distance between two points.
func (p Point) DistanceTo(q Point) float64 {
	return math.Hypot(p.X-q.X, p.Y-q.Y)
}

// BaseStation is one of the K base stations B_k.
type BaseStation struct {
	ID   int
	Name string
	Band BandClass
	Pos  Point

	// CoverageRadius is the maximum distance (meters) at which a mobile
	// device can use this station's access link.
	CoverageRadius float64

	// AccessBandwidth is W_k^A, the cellular access-link bandwidth shared
	// by the devices that select this station.
	AccessBandwidth units.Frequency

	// FronthaulBandwidth is W_k^F, the bandwidth of the fronthaul link
	// toward the edge-server rooms.
	FronthaulBandwidth units.Frequency

	// FronthaulSE is h_k^F, the spectral efficiency of the fronthaul link.
	// The paper treats it as time-invariant; package trace can override it
	// per slot for the time-varying extension.
	FronthaulSE units.SpectralEfficiency

	// Fronthaul is the link medium; it constrains how many rooms the
	// station may connect to.
	Fronthaul FronthaulKind

	// Rooms lists the server-room IDs reachable over this station's
	// fronthaul. A wired station must list exactly one room.
	Rooms []int
}

// Covers reports whether a device at pos can use this station's access link.
func (b *BaseStation) Covers(pos Point) bool {
	return b.Pos.DistanceTo(pos) <= b.CoverageRadius
}

// Room is one of the M edge-server rooms (the sites hosting traditional
// baseband units). Servers are assigned to rooms by Server.Room.
type Room struct {
	ID   int
	Name string
	Pos  Point
}

// Server is one of the N edge servers S_n.
type Server struct {
	ID   int
	Name string

	// Room is the ID of the hosting server room (cluster).
	Room int

	// Cores is the number of CPU cores; the effective computing capability
	// at per-core frequency f is Cores × f cycles per second.
	Cores int

	// MinFreq and MaxFreq are the per-core clock-frequency bounds
	// F_n^L and F_n^U.
	MinFreq, MaxFreq units.Frequency
}

// Capacity returns the server's aggregate computing capability
// (cycles per second) when every core runs at per-core frequency f.
func (s *Server) Capacity(f units.Frequency) units.Frequency {
	return units.Frequency(float64(s.Cores) * float64(f))
}

// MinCapacity returns the aggregate capability at the lowest frequency.
func (s *Server) MinCapacity() units.Frequency { return s.Capacity(s.MinFreq) }

// MaxCapacity returns the aggregate capability at the highest frequency.
func (s *Server) MaxCapacity() units.Frequency { return s.Capacity(s.MaxFreq) }

// Device is one of the I mobile devices D_i.
type Device struct {
	ID   int
	Name string

	// Pos is the initial position; package trace evolves positions under
	// the mobility model.
	Pos Point

	// Speed is the mobility speed in meters per second.
	Speed float64
}

// Network is the full static MEC topology.
type Network struct {
	BaseStations []BaseStation
	Rooms        []Room
	Servers      []Server
	Devices      []Device

	// Suitability is σ_{i,n} ∈ (0, 1]: Suitability[i][n] scores how well
	// device i's task type runs on server n.
	Suitability [][]float64

	// serversByRoom caches room ID → server indices; built by Finalize.
	serversByRoom map[int][]int
	// reachableServers caches BS index → server indices; built by Finalize.
	reachableServers [][]int
}

// Counts returns (K, M, N, I): the numbers of base stations, rooms,
// servers, and devices.
func (n *Network) Counts() (stations, rooms, servers, devices int) {
	return len(n.BaseStations), len(n.Rooms), len(n.Servers), len(n.Devices)
}

// Finalize validates the network and builds the connectivity caches. It
// must be called (directly or via the generator) before using
// ServersInRoom, ReachableServers, or FeasiblePairs.
func (n *Network) Finalize() error {
	if err := n.validate(); err != nil {
		return err
	}
	n.serversByRoom = make(map[int][]int, len(n.Rooms))
	for idx, s := range n.Servers {
		n.serversByRoom[s.Room] = append(n.serversByRoom[s.Room], idx)
	}
	n.reachableServers = make([][]int, len(n.BaseStations))
	for k, bs := range n.BaseStations {
		var reach []int
		for _, room := range bs.Rooms {
			reach = append(reach, n.serversByRoom[room]...)
		}
		n.reachableServers[k] = reach
	}
	return nil
}

func (n *Network) validate() error {
	if len(n.BaseStations) == 0 {
		return errors.New("topology: no base stations")
	}
	if len(n.Rooms) == 0 {
		return errors.New("topology: no server rooms")
	}
	if len(n.Servers) == 0 {
		return errors.New("topology: no servers")
	}
	if len(n.Devices) == 0 {
		return errors.New("topology: no devices")
	}
	roomIDs := make(map[int]bool, len(n.Rooms))
	for _, r := range n.Rooms {
		if roomIDs[r.ID] {
			return fmt.Errorf("topology: duplicate room ID %d", r.ID)
		}
		roomIDs[r.ID] = true
	}
	for k, bs := range n.BaseStations {
		if bs.CoverageRadius <= 0 {
			return fmt.Errorf("topology: station %d has non-positive coverage radius", k)
		}
		if bs.AccessBandwidth <= 0 || bs.FronthaulBandwidth <= 0 {
			return fmt.Errorf("topology: station %d has non-positive bandwidth", k)
		}
		if bs.FronthaulSE <= 0 {
			return fmt.Errorf("topology: station %d has non-positive fronthaul spectral efficiency", k)
		}
		if len(bs.Rooms) == 0 {
			return fmt.Errorf("topology: station %d connects to no room", k)
		}
		if bs.Fronthaul == WiredFiber && len(bs.Rooms) != 1 {
			return fmt.Errorf("topology: wired station %d connects to %d rooms, want exactly 1", k, len(bs.Rooms))
		}
		seen := make(map[int]bool, len(bs.Rooms))
		for _, room := range bs.Rooms {
			if !roomIDs[room] {
				return fmt.Errorf("topology: station %d references unknown room %d", k, room)
			}
			if seen[room] {
				return fmt.Errorf("topology: station %d lists room %d twice", k, room)
			}
			seen[room] = true
		}
	}
	for idx, s := range n.Servers {
		if !roomIDs[s.Room] {
			return fmt.Errorf("topology: server %d references unknown room %d", idx, s.Room)
		}
		if s.Cores <= 0 {
			return fmt.Errorf("topology: server %d has %d cores", idx, s.Cores)
		}
		if s.MinFreq <= 0 || s.MaxFreq < s.MinFreq {
			return fmt.Errorf("topology: server %d has invalid frequency range [%v, %v]", idx, s.MinFreq, s.MaxFreq)
		}
	}
	if len(n.Suitability) != len(n.Devices) {
		return fmt.Errorf("topology: suitability has %d rows, want %d", len(n.Suitability), len(n.Devices))
	}
	for i, row := range n.Suitability {
		if len(row) != len(n.Servers) {
			return fmt.Errorf("topology: suitability row %d has %d entries, want %d", i, len(row), len(n.Servers))
		}
		for nn, sigma := range row {
			if sigma <= 0 || sigma > 1 {
				return fmt.Errorf("topology: suitability[%d][%d] = %v outside (0, 1]", i, nn, sigma)
			}
		}
	}
	return nil
}

// ServersInRoom returns the indices (into Servers) of the servers in the
// given room, or nil for an unknown room.
func (n *Network) ServersInRoom(roomID int) []int {
	return n.serversByRoom[roomID]
}

// ReachableServers returns the indices of the servers reachable from base
// station k over its fronthaul — the set N_i(x) when device i selects k.
func (n *Network) ReachableServers(k int) []int {
	if k < 0 || k >= len(n.reachableServers) {
		return nil
	}
	return n.reachableServers[k]
}

// CoveringStations returns the indices of the base stations whose coverage
// area contains pos.
func (n *Network) CoveringStations(pos Point) []int {
	var out []int
	for k := range n.BaseStations {
		if n.BaseStations[k].Covers(pos) {
			out = append(out, k)
		}
	}
	return out
}

// Pair is a feasible (base station, server) choice for one device: the
// station covers the device and the server's room is reachable over the
// station's fronthaul.
type Pair struct {
	Station int
	Server  int
}

// FeasiblePairs returns every feasible (station, server) pair for a device
// at pos. The result is ordered by station then server index.
func (n *Network) FeasiblePairs(pos Point) []Pair {
	var out []Pair
	for _, k := range n.CoveringStations(pos) {
		for _, s := range n.ReachableServers(k) {
			out = append(out, Pair{Station: k, Server: s})
		}
	}
	return out
}

// CheckFeasible verifies that every device, at its initial position, has at
// least one feasible (station, server) pair. The trace layer keeps devices
// inside coverage, so initial feasibility implies per-slot feasibility.
func (n *Network) CheckFeasible() error {
	for i := range n.Devices {
		if len(n.FeasiblePairs(n.Devices[i].Pos)) == 0 {
			return fmt.Errorf("topology: device %d at %+v has no feasible (station, server) pair", i, n.Devices[i].Pos)
		}
	}
	return nil
}
