package topology

import (
	"strings"
	"testing"

	"eotora/internal/rng"
	"eotora/internal/units"
)

// tinyNetwork builds a minimal hand-rolled valid network:
// 2 stations, 2 rooms, 3 servers, 2 devices.
func tinyNetwork() *Network {
	return &Network{
		BaseStations: []BaseStation{
			{
				ID: 0, Band: LowBand, Pos: Point{X: 0, Y: 0}, CoverageRadius: 1000,
				AccessBandwidth: 50 * units.MHz, FronthaulBandwidth: 500 * units.MHz,
				FronthaulSE: 10, Fronthaul: WiredFiber, Rooms: []int{0},
			},
			{
				ID: 1, Band: MidBand, Pos: Point{X: 100, Y: 0}, CoverageRadius: 50,
				AccessBandwidth: 80 * units.MHz, FronthaulBandwidth: 800 * units.MHz,
				FronthaulSE: 10, Fronthaul: WirelessMMWave, Rooms: []int{0, 1},
			},
		},
		Rooms: []Room{
			{ID: 0, Pos: Point{X: 0, Y: 50}},
			{ID: 1, Pos: Point{X: 100, Y: 50}},
		},
		Servers: []Server{
			{ID: 0, Room: 0, Cores: 64, MinFreq: 1.8 * units.GHz, MaxFreq: 3.6 * units.GHz},
			{ID: 1, Room: 0, Cores: 128, MinFreq: 1.8 * units.GHz, MaxFreq: 3.6 * units.GHz},
			{ID: 2, Room: 1, Cores: 64, MinFreq: 1.8 * units.GHz, MaxFreq: 3.6 * units.GHz},
		},
		Devices: []Device{
			{ID: 0, Pos: Point{X: 10, Y: 0}},
			{ID: 1, Pos: Point{X: 110, Y: 0}},
		},
		Suitability: [][]float64{
			{0.5, 0.8, 1.0},
			{0.9, 0.6, 0.7},
		},
	}
}

func TestFinalizeValidNetwork(t *testing.T) {
	n := tinyNetwork()
	if err := n.Finalize(); err != nil {
		t.Fatalf("Finalize() = %v", err)
	}
	if err := n.CheckFeasible(); err != nil {
		t.Fatalf("CheckFeasible() = %v", err)
	}
}

func TestValidationErrors(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(n *Network)
		wantSub string
	}{
		{
			name:    "no stations",
			mutate:  func(n *Network) { n.BaseStations = nil },
			wantSub: "no base stations",
		},
		{
			name:    "no rooms",
			mutate:  func(n *Network) { n.Rooms = nil },
			wantSub: "no server rooms",
		},
		{
			name:    "no servers",
			mutate:  func(n *Network) { n.Servers = nil },
			wantSub: "no servers",
		},
		{
			name:    "no devices",
			mutate:  func(n *Network) { n.Devices = nil },
			wantSub: "no devices",
		},
		{
			name:    "duplicate room IDs",
			mutate:  func(n *Network) { n.Rooms[1].ID = 0 },
			wantSub: "duplicate room",
		},
		{
			name:    "zero coverage",
			mutate:  func(n *Network) { n.BaseStations[0].CoverageRadius = 0 },
			wantSub: "coverage radius",
		},
		{
			name:    "zero access bandwidth",
			mutate:  func(n *Network) { n.BaseStations[0].AccessBandwidth = 0 },
			wantSub: "bandwidth",
		},
		{
			name:    "zero fronthaul spectral efficiency",
			mutate:  func(n *Network) { n.BaseStations[1].FronthaulSE = 0 },
			wantSub: "spectral efficiency",
		},
		{
			name:    "station with no rooms",
			mutate:  func(n *Network) { n.BaseStations[0].Rooms = nil },
			wantSub: "no room",
		},
		{
			name:    "wired station with two rooms",
			mutate:  func(n *Network) { n.BaseStations[0].Rooms = []int{0, 1} },
			wantSub: "wired",
		},
		{
			name:    "station referencing unknown room",
			mutate:  func(n *Network) { n.BaseStations[0].Rooms = []int{9} },
			wantSub: "unknown room",
		},
		{
			name:    "station listing a room twice",
			mutate:  func(n *Network) { n.BaseStations[1].Rooms = []int{0, 0} },
			wantSub: "twice",
		},
		{
			name:    "server in unknown room",
			mutate:  func(n *Network) { n.Servers[0].Room = 7 },
			wantSub: "unknown room",
		},
		{
			name:    "server with zero cores",
			mutate:  func(n *Network) { n.Servers[0].Cores = 0 },
			wantSub: "cores",
		},
		{
			name:    "inverted frequency range",
			mutate:  func(n *Network) { n.Servers[0].MaxFreq = n.Servers[0].MinFreq / 2 },
			wantSub: "frequency range",
		},
		{
			name:    "suitability row count mismatch",
			mutate:  func(n *Network) { n.Suitability = n.Suitability[:1] },
			wantSub: "suitability",
		},
		{
			name:    "suitability column count mismatch",
			mutate:  func(n *Network) { n.Suitability[0] = n.Suitability[0][:2] },
			wantSub: "suitability",
		},
		{
			name:    "suitability out of range",
			mutate:  func(n *Network) { n.Suitability[0][0] = 1.5 },
			wantSub: "outside",
		},
		{
			name:    "zero suitability rejected",
			mutate:  func(n *Network) { n.Suitability[0][0] = 0 },
			wantSub: "outside",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			n := tinyNetwork()
			tt.mutate(n)
			err := n.Finalize()
			if err == nil {
				t.Fatal("Finalize() succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not mention %q", err, tt.wantSub)
			}
		})
	}
}

func TestConnectivityCaches(t *testing.T) {
	n := tinyNetwork()
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	if got := n.ServersInRoom(0); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("ServersInRoom(0) = %v, want [0 1]", got)
	}
	if got := n.ServersInRoom(1); len(got) != 1 || got[0] != 2 {
		t.Errorf("ServersInRoom(1) = %v, want [2]", got)
	}
	if got := n.ServersInRoom(42); got != nil {
		t.Errorf("ServersInRoom(42) = %v, want nil", got)
	}
	// Station 0 (wired to room 0) reaches servers 0, 1.
	if got := n.ReachableServers(0); len(got) != 2 {
		t.Errorf("ReachableServers(0) = %v, want two servers", got)
	}
	// Station 1 (wireless to both rooms) reaches all three.
	if got := n.ReachableServers(1); len(got) != 3 {
		t.Errorf("ReachableServers(1) = %v, want three servers", got)
	}
	if got := n.ReachableServers(-1); got != nil {
		t.Errorf("ReachableServers(-1) = %v, want nil", got)
	}
	if got := n.ReachableServers(5); got != nil {
		t.Errorf("ReachableServers(5) = %v, want nil", got)
	}
}

func TestCoverageAndFeasiblePairs(t *testing.T) {
	n := tinyNetwork()
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	// Device 0 at (10, 0): covered by station 0 (radius 1000) and station 1
	// (distance 90 > 50, not covered).
	if got := n.CoveringStations(Point{X: 10, Y: 0}); len(got) != 1 || got[0] != 0 {
		t.Errorf("CoveringStations = %v, want [0]", got)
	}
	pairs := n.FeasiblePairs(Point{X: 10, Y: 0})
	if len(pairs) != 2 {
		t.Fatalf("FeasiblePairs = %v, want 2 pairs via station 0", pairs)
	}
	for _, p := range pairs {
		if p.Station != 0 {
			t.Errorf("pair %+v uses station %d, want 0", p, p.Station)
		}
	}
	// Device 1 at (110, 0): covered by both stations; station 1 adds all
	// three servers, station 0 adds servers 0, 1.
	pairs = n.FeasiblePairs(Point{X: 110, Y: 0})
	if len(pairs) != 5 {
		t.Errorf("FeasiblePairs = %v, want 5 pairs", pairs)
	}
}

func TestCheckFeasibleFailure(t *testing.T) {
	n := tinyNetwork()
	n.Devices = append(n.Devices, Device{ID: 2, Pos: Point{X: 5000, Y: 5000}})
	n.Suitability = append(n.Suitability, []float64{0.5, 0.5, 0.5})
	if err := n.Finalize(); err != nil {
		t.Fatal(err)
	}
	if err := n.CheckFeasible(); err == nil {
		t.Error("CheckFeasible() passed for an uncovered device")
	}
}

func TestServerCapacity(t *testing.T) {
	s := Server{Cores: 64, MinFreq: 1.8 * units.GHz, MaxFreq: 3.6 * units.GHz}
	if got := s.Capacity(2 * units.GHz); got != 128*units.GHz {
		t.Errorf("Capacity = %v, want 128 GHz", got)
	}
	if got := s.MinCapacity(); got != units.Frequency(64*1.8e9) {
		t.Errorf("MinCapacity = %v", got)
	}
	if got := s.MaxCapacity(); got != units.Frequency(64*3.6e9) {
		t.Errorf("MaxCapacity = %v", got)
	}
}

func TestPointDistance(t *testing.T) {
	if got := (Point{X: 0, Y: 0}).DistanceTo(Point{X: 3, Y: 4}); got != 5 {
		t.Errorf("DistanceTo = %v, want 5", got)
	}
}

func TestEnumStrings(t *testing.T) {
	if LowBand.String() != "low-band" || MidBand.String() != "mid-band" || HighBand.String() != "high-band" {
		t.Error("BandClass strings wrong")
	}
	if BandClass(99).String() != "BandClass(99)" {
		t.Error("unknown BandClass string wrong")
	}
	if WiredFiber.String() != "wired-fiber" || WirelessMMWave.String() != "wireless-mmwave" {
		t.Error("FronthaulKind strings wrong")
	}
	if FronthaulKind(99).String() != "FronthaulKind(99)" {
		t.Error("unknown FronthaulKind string wrong")
	}
}

func TestDefaultSpecMatchesPaper(t *testing.T) {
	spec := DefaultSpec(100)
	if spec.Stations != 6 {
		t.Errorf("Stations = %d, want 6 (paper VI-A)", spec.Stations)
	}
	if spec.Rooms != 2 {
		t.Errorf("Rooms = %d, want 2", spec.Rooms)
	}
	if spec.ServersPerRoom != 8 {
		t.Errorf("ServersPerRoom = %d, want 8", spec.ServersPerRoom)
	}
	if spec.SmallCores != 64 || spec.LargeCores != 128 {
		t.Errorf("cores = %d/%d, want 64/128", spec.SmallCores, spec.LargeCores)
	}
	if spec.FreqMin != 1.8*units.GHz || spec.FreqMax != 3.6*units.GHz {
		t.Errorf("freq range = [%v, %v], want [1.8 GHz, 3.6 GHz]", spec.FreqMin, spec.FreqMax)
	}
	if spec.FronthaulSE != 10 {
		t.Errorf("FronthaulSE = %v, want 10 bps/Hz", spec.FronthaulSE)
	}
	if err := spec.Validate(); err != nil {
		t.Errorf("DefaultSpec invalid: %v", err)
	}
}

func TestSpecValidateErrors(t *testing.T) {
	base := DefaultSpec(10)
	tests := []struct {
		name   string
		mutate func(*Spec)
	}{
		{"zero stations", func(s *Spec) { s.Stations = 0 }},
		{"zero rooms", func(s *Spec) { s.Rooms = 0 }},
		{"zero servers per room", func(s *Spec) { s.ServersPerRoom = 0 }},
		{"zero devices", func(s *Spec) { s.Devices = 0 }},
		{"zero area", func(s *Spec) { s.AreaSize = 0 }},
		{"too many umbrellas", func(s *Spec) { s.UmbrellaStations = s.Stations + 1 }},
		{"negative umbrellas", func(s *Spec) { s.UmbrellaStations = -1 }},
		{"no midband radius", func(s *Spec) { s.UmbrellaStations = 0; s.MidBandRadius = 0 }},
		{"bad access bandwidth", func(s *Spec) { s.AccessBandwidthMax = s.AccessBandwidthMin - 1 }},
		{"bad fronthaul bandwidth", func(s *Spec) { s.FronthaulBandwidthMin = 0 }},
		{"bad fronthaul SE", func(s *Spec) { s.FronthaulSE = 0 }},
		{"bad cores", func(s *Spec) { s.SmallCores = 0 }},
		{"bad freq range", func(s *Spec) { s.FreqMax = s.FreqMin / 2 }},
		{"bad suitability", func(s *Spec) { s.SuitabilityMin = 0 }},
		{"suitability above one", func(s *Spec) { s.SuitabilityMax = 1.2 }},
		{"negative speed", func(s *Spec) { s.DeviceSpeedMax = -1 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := base
			tt.mutate(&spec)
			if err := spec.Validate(); err == nil {
				t.Error("Validate() passed, want error")
			}
		})
	}
}

func TestGenerateDefaultScenario(t *testing.T) {
	src := rng.New(42)
	n, err := Generate(DefaultSpec(100), src)
	if err != nil {
		t.Fatal(err)
	}
	k, m, nn, i := n.Counts()
	if k != 6 || m != 2 || nn != 16 || i != 100 {
		t.Errorf("Counts = (%d,%d,%d,%d), want (6,2,16,100)", k, m, nn, i)
	}
	// Half the servers in each room must be 64-core, half 128-core.
	for room := 0; room < 2; room++ {
		small, large := 0, 0
		for _, idx := range n.ServersInRoom(room) {
			switch n.Servers[idx].Cores {
			case 64:
				small++
			case 128:
				large++
			default:
				t.Errorf("server %d has unexpected cores %d", idx, n.Servers[idx].Cores)
			}
		}
		if small != 4 || large != 4 {
			t.Errorf("room %d has %d small / %d large servers, want 4/4", room, small, large)
		}
	}
	// Every wired station connects to exactly one room.
	for k, bs := range n.BaseStations {
		if bs.Fronthaul == WiredFiber && len(bs.Rooms) != 1 {
			t.Errorf("station %d: wired with %d rooms", k, len(bs.Rooms))
		}
		if float64(bs.AccessBandwidth) < 50e6 || float64(bs.AccessBandwidth) > 100e6 {
			t.Errorf("station %d access bandwidth %v outside paper range", k, bs.AccessBandwidth)
		}
		if float64(bs.FronthaulBandwidth) < 0.5e9 || float64(bs.FronthaulBandwidth) > 1e9 {
			t.Errorf("station %d fronthaul bandwidth %v outside paper range", k, bs.FronthaulBandwidth)
		}
	}
	// Suitabilities all in [0.5, 1].
	for i, row := range n.Suitability {
		for j, sigma := range row {
			if sigma < 0.5 || sigma > 1 {
				t.Errorf("σ[%d][%d] = %v outside [0.5, 1]", i, j, sigma)
			}
		}
	}
	// Every device must have a feasible pair (guaranteed by umbrellas).
	if err := n.CheckFeasible(); err != nil {
		t.Error(err)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(DefaultSpec(20), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(DefaultSpec(20), rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.BaseStations {
		if a.BaseStations[k].AccessBandwidth != b.BaseStations[k].AccessBandwidth {
			t.Fatalf("station %d differs across same-seed generations", k)
		}
	}
	for i := range a.Devices {
		if a.Devices[i].Pos != b.Devices[i].Pos {
			t.Fatalf("device %d position differs across same-seed generations", i)
		}
	}
}

func TestGenerateWirelessFronthaul(t *testing.T) {
	spec := DefaultSpec(10)
	spec.WirelessFronthaul = true
	n, err := Generate(spec, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for k, bs := range n.BaseStations {
		if bs.Fronthaul != WirelessMMWave {
			t.Errorf("station %d: fronthaul %v, want wireless", k, bs.Fronthaul)
		}
		if len(bs.Rooms) != spec.Rooms {
			t.Errorf("station %d connects to %d rooms, want all %d", k, len(bs.Rooms), spec.Rooms)
		}
		// Wireless stations reach every server.
		if got := n.ReachableServers(k); len(got) != len(n.Servers) {
			t.Errorf("station %d reaches %d servers, want %d", k, len(got), len(n.Servers))
		}
	}
}

func TestGenerateRejectsBadSpec(t *testing.T) {
	spec := DefaultSpec(10)
	spec.Stations = 0
	if _, err := Generate(spec, rng.New(1)); err == nil {
		t.Error("Generate accepted invalid spec")
	}
}

func TestLayoutStrings(t *testing.T) {
	if LayoutRandom.String() != "random" || LayoutHex.String() != "hex" || LayoutGrid.String() != "grid" {
		t.Error("layout strings wrong")
	}
	if Layout(7).String() != "Layout(7)" {
		t.Error("unknown layout string wrong")
	}
}

func TestHexLattice(t *testing.T) {
	pts := hexLattice(2000, 600, 7)
	if len(pts) != 7 {
		t.Fatalf("points = %d, want 7", len(pts))
	}
	center := Point{X: 1000, Y: 1000}
	// First point is the center cell; points are ordered by distance.
	if center.DistanceTo(pts[0]) > 1 {
		t.Errorf("first point %+v not at center", pts[0])
	}
	for i := 1; i < len(pts); i++ {
		if center.DistanceTo(pts[i]) < center.DistanceTo(pts[i-1])-1e-9 {
			t.Errorf("points not ordered by distance at %d", i)
		}
	}
	// Pairwise distances at least the lattice spacing.
	spacing := 600 * 1.7320508 * 0.8660254 // row pitch is the smallest gap
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].DistanceTo(pts[j]); d < spacing*0.49 {
				t.Errorf("points %d and %d only %.0fm apart", i, j, d)
			}
		}
	}
	if hexLattice(2000, 600, 0) != nil {
		t.Error("zero points should be nil")
	}
	// Degenerate radius falls back without panicking.
	if got := hexLattice(2000, 0, 3); len(got) != 3 {
		t.Errorf("fallback radius produced %d points", len(got))
	}
}

func TestGenerateHexLayout(t *testing.T) {
	spec := DefaultSpec(30)
	spec.Layout = LayoutHex
	net, err := Generate(spec, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	// Mid-band stations sit on the lattice: distinct, deterministic
	// positions near the center.
	center := Point{X: spec.AreaSize / 2, Y: spec.AreaSize / 2}
	for k := spec.UmbrellaStations; k < spec.Stations; k++ {
		bs := net.BaseStations[k]
		if bs.Band != MidBand {
			t.Errorf("station %d band %v", k, bs.Band)
		}
		if center.DistanceTo(bs.Pos) > spec.AreaSize {
			t.Errorf("station %d far from center: %+v", k, bs.Pos)
		}
	}
	// Same seed, same layout → same positions.
	net2, err := Generate(spec, rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	for k := range net.BaseStations {
		if net.BaseStations[k].Pos != net2.BaseStations[k].Pos {
			t.Errorf("hex layout not deterministic at station %d", k)
		}
	}
	if err := net.CheckFeasible(); err != nil {
		t.Error(err)
	}
}

func TestGridLattice(t *testing.T) {
	pts := gridLattice(5000, 49)
	if len(pts) != 49 {
		t.Fatalf("points = %d, want 49", len(pts))
	}
	// 49 points → a 7×7 grid of cell centers, cell size 5000/7.
	cell := 5000.0 / 7
	for i, p := range pts {
		wantX := (float64(i%7) + 0.5) * cell
		wantY := (float64(i/7) + 0.5) * cell
		if p.X != wantX || p.Y != wantY {
			t.Errorf("point %d = %+v, want (%.1f, %.1f)", i, p, wantX, wantY)
		}
	}
	// Coverage guarantee: every point of the area lies within half a cell
	// diagonal (~505 m here) of some center — probe a fine sample grid.
	halfDiag := 0.5 * 1.4142136 * cell
	for x := 0.0; x <= 5000; x += 97 {
		for y := 0.0; y <= 5000; y += 97 {
			probe := Point{X: x, Y: y}
			best := probe.DistanceTo(pts[0])
			for _, p := range pts[1:] {
				if d := probe.DistanceTo(p); d < best {
					best = d
				}
			}
			if best > halfDiag+1e-9 {
				t.Fatalf("probe (%.0f, %.0f) is %.1fm from nearest center, want ≤ %.1f", x, y, best, halfDiag)
			}
		}
	}
	if gridLattice(5000, 0) != nil {
		t.Error("zero points should be nil")
	}
	// Non-square counts still produce exactly n points inside the area.
	for _, n := range []int{1, 2, 5, 12, 23} {
		got := gridLattice(1000, n)
		if len(got) != n {
			t.Errorf("gridLattice(1000, %d) = %d points", n, len(got))
		}
		for _, p := range got {
			if p.X < 0 || p.X > 1000 || p.Y < 0 || p.Y > 1000 {
				t.Errorf("gridLattice(1000, %d) point outside area: %+v", n, p)
			}
		}
	}
}

func TestNearestRoomFronthaul(t *testing.T) {
	spec := DefaultSpec(30)
	spec.NearestRoomFronthaul = true
	net, err := Generate(spec, rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	for k, bs := range net.BaseStations {
		if len(bs.Rooms) != 1 {
			t.Fatalf("station %d wired to %d rooms, want 1", k, len(bs.Rooms))
		}
		got := bs.Rooms[0]
		for m := range net.Rooms {
			if bs.Pos.DistanceTo(net.Rooms[m].Pos) < bs.Pos.DistanceTo(net.Rooms[got].Pos) {
				t.Errorf("station %d wired to room %d but room %d is closer", k, got, m)
			}
		}
	}
	// Skipping the room draw must not perturb any other sequence: station
	// positions, bandwidths, devices, and suitabilities are identical to
	// the random-wiring network from the same seed.
	random, err := Generate(DefaultSpec(30), rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	for k := range net.BaseStations {
		a, b := net.BaseStations[k], random.BaseStations[k]
		if a.Pos != b.Pos || a.AccessBandwidth != b.AccessBandwidth || a.FronthaulBandwidth != b.FronthaulBandwidth {
			t.Errorf("station %d draws differ between nearest-room and random wiring", k)
		}
	}
	for i := range net.Devices {
		if net.Devices[i].Pos != random.Devices[i].Pos || net.Devices[i].Speed != random.Devices[i].Speed {
			t.Errorf("device %d draws differ between nearest-room and random wiring", i)
		}
	}
}

func TestMetroSpec(t *testing.T) {
	spec := MetroSpec(200)
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.UmbrellaStations != 0 {
		t.Error("metro must have no umbrella stations (they would couple every cluster)")
	}
	if !spec.NearestRoomFronthaul || !spec.RoomGrid || spec.Layout != LayoutGrid {
		t.Error("metro should use grid layouts and nearest-room wiring")
	}
	net, err := Generate(spec, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	// Full coverage without umbrellas: Generate already runs CheckFeasible,
	// but assert it explicitly — this is the property the spec's geometry
	// (grid spacing vs. 600 m radius) exists to guarantee.
	if err := net.CheckFeasible(); err != nil {
		t.Fatal(err)
	}
	// Every room should end up with at least one wired station; otherwise
	// its servers would be dead weight.
	wired := make([]bool, spec.Rooms)
	for _, bs := range net.BaseStations {
		for _, m := range bs.Rooms {
			wired[m] = true
		}
	}
	for m, ok := range wired {
		if !ok {
			t.Errorf("room %d has no wired station", m)
		}
	}
}

func TestScenarioPresets(t *testing.T) {
	presets := map[string]Spec{
		"urban":  UrbanSpec(40),
		"rural":  RuralSpec(40),
		"campus": CampusSpec(40),
		"metro":  MetroSpec(40),
	}
	for name, spec := range presets {
		t.Run(name, func(t *testing.T) {
			if err := spec.Validate(); err != nil {
				t.Fatalf("preset invalid: %v", err)
			}
			net, err := Generate(spec, rng.New(21))
			if err != nil {
				t.Fatal(err)
			}
			if err := net.CheckFeasible(); err != nil {
				t.Fatal(err)
			}
		})
	}
	// Distinguishing characteristics.
	if u := UrbanSpec(10); u.Stations <= DefaultSpec(10).Stations {
		t.Error("urban should have more stations than default")
	}
	if r := RuralSpec(10); r.UmbrellaStations != r.Stations {
		t.Error("rural should be all low-band")
	}
	if c := CampusSpec(10); !c.WirelessFronthaul {
		t.Error("campus should use wireless fronthaul")
	}
}
