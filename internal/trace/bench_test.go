package trace

import (
	"testing"

	"eotora/internal/rng"
	"eotora/internal/topology"
)

func BenchmarkGeneratorNext(b *testing.B) {
	net, err := topology.Generate(topology.DefaultSpec(100), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	gen, err := NewGenerator(net, DefaultGeneratorConfig(), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next()
	}
}

func BenchmarkPriceProcess(b *testing.B) {
	p := NewPriceProcess(DefaultPriceConfig(), rng.New(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Next()
	}
}

func BenchmarkChannelProcess(b *testing.B) {
	net, err := topology.Generate(topology.DefaultSpec(100), rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	ch := NewChannelProcess(DefaultChannelConfig(), net, rng.New(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Next()
	}
}
