package trace

import (
	"math"

	"eotora/internal/rng"
	"eotora/internal/topology"
	"eotora/internal/units"
)

// ChannelConfig parameterizes the access-link channel model.
type ChannelConfig struct {
	// SEMin/SEMax bound the spectral efficiency (paper: 15–50 bps/Hz).
	SEMin, SEMax units.SpectralEfficiency
	// ARCoeff is the AR(1) persistence of the per-pair fading process in
	// [0, 1); higher values make channels change more slowly.
	ARCoeff float64
	// NoiseSigma is the fading innovation scale in bps/Hz.
	NoiseSigma float64
	// SlotSeconds converts device speeds into per-slot displacement.
	SlotSeconds float64
}

// DefaultChannelConfig returns the paper's channel ranges with moderate
// slot-to-slot correlation and hourly slots.
func DefaultChannelConfig() ChannelConfig {
	return ChannelConfig{
		SEMin:       15,
		SEMax:       50,
		ARCoeff:     0.6,
		NoiseSigma:  4,
		SlotSeconds: 3600,
	}
}

// ChannelProcess evolves device positions under a random-waypoint walk and
// produces per-(device, station) spectral efficiencies. For a covered pair
// the efficiency mean-reverts toward a distance-dependent level: devices
// at the cell edge see the low end of the range, devices under the tower
// the high end. Uncovered pairs report zero.
type ChannelProcess struct {
	cfg ChannelConfig
	net *topology.Network
	src *rng.Source

	area      float64
	positions []topology.Point
	waypoints []topology.Point
	fading    [][]float64 // AR(1) deviation per pair, in bps/Hz
}

// NewChannelProcess returns a channel process over the network's devices
// and stations. The network must be finalized.
func NewChannelProcess(cfg ChannelConfig, net *topology.Network, src *rng.Source) *ChannelProcess {
	_, _, _, devices := net.Counts()
	stations, _, _, _ := net.Counts()
	area := 0.0
	for _, bs := range net.BaseStations {
		area = math.Max(area, math.Max(bs.Pos.X, bs.Pos.Y))
	}
	for _, d := range net.Devices {
		area = math.Max(area, math.Max(d.Pos.X, d.Pos.Y))
	}
	if area <= 0 {
		area = 1
	}
	p := &ChannelProcess{
		cfg:       cfg,
		net:       net,
		src:       src,
		area:      area,
		positions: make([]topology.Point, devices),
		waypoints: make([]topology.Point, devices),
		fading:    make([][]float64, devices),
	}
	for i := range p.positions {
		p.positions[i] = net.Devices[i].Pos
		p.waypoints[i] = p.randomWaypoint()
		p.fading[i] = make([]float64, stations)
	}
	return p
}

func (p *ChannelProcess) randomWaypoint() topology.Point {
	return topology.Point{X: p.src.Uniform(0, p.area), Y: p.src.Uniform(0, p.area)}
}

// Positions returns the current device positions (a copy).
func (p *ChannelProcess) Positions() []topology.Point {
	return append([]topology.Point(nil), p.positions...)
}

// step advances every device toward its waypoint by speed × slot length,
// picking a fresh waypoint on arrival.
func (p *ChannelProcess) step() {
	for i := range p.positions {
		speed := p.net.Devices[i].Speed
		if speed <= 0 {
			continue
		}
		move := speed * p.cfg.SlotSeconds
		for move > 0 {
			cur, wp := p.positions[i], p.waypoints[i]
			dist := cur.DistanceTo(wp)
			if dist <= move {
				p.positions[i] = wp
				p.waypoints[i] = p.randomWaypoint()
				move -= dist
				continue
			}
			frac := move / dist
			p.positions[i] = topology.Point{
				X: cur.X + frac*(wp.X-cur.X),
				Y: cur.Y + frac*(wp.Y-cur.Y),
			}
			move = 0
		}
	}
}

// Next advances the mobility model one slot and returns the channel matrix
// h[i][k]; zero entries mark out-of-coverage pairs.
func (p *ChannelProcess) Next() [][]units.SpectralEfficiency {
	p.step()
	stations := len(p.net.BaseStations)
	out := make([][]units.SpectralEfficiency, len(p.positions))
	span := float64(p.cfg.SEMax - p.cfg.SEMin)
	for i := range p.positions {
		row := make([]units.SpectralEfficiency, stations)
		for k := range p.net.BaseStations {
			bs := &p.net.BaseStations[k]
			dist := bs.Pos.DistanceTo(p.positions[i])
			if dist > bs.CoverageRadius {
				p.fading[i][k] = 0 // reset fading memory outside coverage
				continue
			}
			// Distance-dependent level: cell edge → SEMin, tower → SEMax.
			level := float64(p.cfg.SEMax) - span*dist/bs.CoverageRadius
			// AR(1) fading around the level.
			p.fading[i][k] = p.cfg.ARCoeff*p.fading[i][k] + p.src.Normal(0, p.cfg.NoiseSigma)
			se := rng.Clamp(level+p.fading[i][k], float64(p.cfg.SEMin), float64(p.cfg.SEMax))
			row[k] = units.SpectralEfficiency(se)
		}
		out[i] = row
	}
	return out
}
