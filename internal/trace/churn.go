package trace

import (
	"fmt"

	"eotora/internal/rng"
	"eotora/internal/topology"
	"eotora/internal/units"
)

// ChurnKind enumerates the population events a ChurnSchedule can apply.
type ChurnKind int

// The population event kinds, in the order they are drawn each slot.
const (
	// DeviceJoin activates a previously inactive device.
	DeviceJoin ChurnKind = iota
	// DeviceLeave deactivates an active device.
	DeviceLeave
	// Handover forces an active device off its strongest station by
	// zeroing that channel entry (the device re-associates elsewhere).
	Handover
	// ServerAdd activates a previously removed server.
	ServerAdd
	// ServerRemove structurally removes an active server.
	ServerRemove
)

// String implements fmt.Stringer.
func (k ChurnKind) String() string {
	switch k {
	case DeviceJoin:
		return "device-join"
	case DeviceLeave:
		return "device-leave"
	case Handover:
		return "handover"
	case ServerAdd:
		return "server-add"
	case ServerRemove:
		return "server-remove"
	}
	return fmt.Sprintf("churn-kind(%d)", int(k))
}

// ChurnEvent records one population change applied to a slot.
type ChurnEvent struct {
	// Kind is the event type.
	Kind ChurnKind
	// Device is the affected device index (-1 for server events).
	Device int
	// Server is the affected server index (-1 for device events).
	Server int
	// Station is the station a Handover vacated (-1 otherwise).
	Station int
}

// ChurnConfig parameterizes the deterministic population process. All
// probabilities are per slot; a zero-valued config with
// InitialActiveFraction 1 is a bit-exact passthrough (no event ever
// fires, and the published states carry nil activity masks).
type ChurnConfig struct {
	// Seed drives every churn draw. Each slot derives its own stream from
	// (Seed, slot), so churn at slot t is independent of the history of
	// draws and reproducible in isolation.
	Seed int64
	// DeviceJoinProb is the per-slot probability that each inactive
	// (covered) device joins.
	DeviceJoinProb float64
	// DeviceLeaveProb is the per-slot probability that each active device
	// leaves, subject to the MinActiveDevices floor.
	DeviceLeaveProb float64
	// HandoverProb is the per-slot probability that each active device
	// with at least two covered stations is handed off its strongest one.
	HandoverProb float64
	// ServerRemoveProb is the per-slot probability of removing one
	// removable server (one whose loss leaves every station that reaches
	// it with at least one other active reachable server).
	ServerRemoveProb float64
	// ServerAddProb is the per-slot probability of re-activating one
	// removed server.
	ServerAddProb float64
	// MinActiveDevices floors the active population; leaves that would
	// drop below it are suppressed. Zero means a floor of one device.
	MinActiveDevices int
	// InitialActiveFraction is the probability that each device starts
	// active (servers always start present). Must lie in (0, 1]; 1 starts
	// from the full population.
	InitialActiveFraction float64
}

// DefaultChurnConfig returns a moderate churn regime: ~2% of devices
// joining or leaving per slot, ~5% handed over, and rare server events.
func DefaultChurnConfig(seed int64) ChurnConfig {
	return ChurnConfig{
		Seed:                  seed,
		DeviceJoinProb:        0.02,
		DeviceLeaveProb:       0.02,
		HandoverProb:          0.05,
		ServerRemoveProb:      0.01,
		ServerAddProb:         0.02,
		MinActiveDevices:      1,
		InitialActiveFraction: 1,
	}
}

// Validate checks the configuration's ranges.
func (c ChurnConfig) Validate() error {
	probs := []struct {
		name string
		p    float64
	}{
		{"DeviceJoinProb", c.DeviceJoinProb},
		{"DeviceLeaveProb", c.DeviceLeaveProb},
		{"HandoverProb", c.HandoverProb},
		{"ServerRemoveProb", c.ServerRemoveProb},
		{"ServerAddProb", c.ServerAddProb},
	}
	for _, pr := range probs {
		if pr.p < 0 || pr.p > 1 || pr.p != pr.p {
			return fmt.Errorf("trace: churn %s %v outside [0, 1]", pr.name, pr.p)
		}
	}
	if c.MinActiveDevices < 0 {
		return fmt.Errorf("trace: churn MinActiveDevices %d negative", c.MinActiveDevices)
	}
	if !(c.InitialActiveFraction > 0 && c.InitialActiveFraction <= 1) {
		return fmt.Errorf("trace: churn InitialActiveFraction %v outside (0, 1]", c.InitialActiveFraction)
	}
	return nil
}

// ChurnSchedule wraps a Source and superimposes a deterministic
// population process over the fixed topology universe: device joins and
// leaves, forced handovers, and server add/remove events. The topology
// itself never changes — churn only toggles activity masks and edits
// channel rows — so every downstream array keeps its universe size and a
// zero-churn schedule is bit-identical to the wrapped source.
//
// Every draw for slot t comes from a stream derived from (Seed, t), so a
// slot's events are reproducible without replaying the history, and the
// wrapped source sees exactly the Next() cadence it would without churn.
type ChurnSchedule struct {
	cfg ChurnConfig
	net *topology.Network
	src Source

	slot         int
	deviceActive []bool
	serverActive []bool
}

var _ Source = (*ChurnSchedule)(nil)

// NewChurnSchedule wraps src with the churn process for net. The initial
// device population is drawn from a stream derived from (cfg.Seed,
// "churn-init"); servers all start present.
func NewChurnSchedule(cfg ChurnConfig, net *topology.Network, src Source) (*ChurnSchedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	_, _, servers, devices := net.Counts()
	if devices == 0 {
		return nil, fmt.Errorf("trace: churn schedule needs a network with devices")
	}
	c := &ChurnSchedule{
		cfg:          cfg,
		net:          net,
		src:          src,
		deviceActive: make([]bool, devices),
		serverActive: make([]bool, servers),
	}
	for n := range c.serverActive {
		c.serverActive[n] = true
	}
	r := rng.New(cfg.Seed).Derive("churn-init")
	active := 0
	for i := range c.deviceActive {
		if cfg.InitialActiveFraction >= 1 || r.Bernoulli(cfg.InitialActiveFraction) {
			c.deviceActive[i] = true
			active++
		}
	}
	floor := c.floor()
	for i := 0; i < devices && active < floor; i++ {
		if !c.deviceActive[i] {
			c.deviceActive[i] = true
			active++
		}
	}
	return c, nil
}

// Period implements Source, delegating to the wrapped source.
func (c *ChurnSchedule) Period() int { return c.src.Period() }

// floor returns the effective minimum active-device count.
func (c *ChurnSchedule) floor() int {
	if c.cfg.MinActiveDevices < 1 {
		return 1
	}
	if c.cfg.MinActiveDevices > len(c.deviceActive) {
		return len(c.deviceActive)
	}
	return c.cfg.MinActiveDevices
}

// Next implements Source: it draws the next state from the wrapped source
// and applies this slot's churn events in a fixed order (device leaves
// and joins in ascending device order, then handovers, then at most one
// server removal and one addition). The returned state carries copies of
// the activity masks — or nil masks when the population is full — and the
// slot's event list in Churn.
func (c *ChurnSchedule) Next() *State {
	st := c.src.Next()
	c.slot++
	r := rng.New(c.cfg.Seed).Derive(fmt.Sprintf("churn-slot-%d", c.slot))

	var events []ChurnEvent
	active := 0
	for _, a := range c.deviceActive {
		if a {
			active++
		}
	}
	floor := c.floor()

	// Device leaves and joins, ascending so the draw order is fixed.
	for i := range c.deviceActive {
		if c.deviceActive[i] {
			if c.cfg.DeviceLeaveProb > 0 && r.Bernoulli(c.cfg.DeviceLeaveProb) && active > floor {
				c.deviceActive[i] = false
				active--
				events = append(events, ChurnEvent{Kind: DeviceLeave, Device: i, Server: -1, Station: -1})
			}
		} else if c.cfg.DeviceJoinProb > 0 && r.Bernoulli(c.cfg.DeviceJoinProb) && c.covered(st, i) {
			c.deviceActive[i] = true
			active++
			events = append(events, ChurnEvent{Kind: DeviceJoin, Device: i, Server: -1, Station: -1})
		}
	}

	// Forced handovers: drop the strongest covered station of devices
	// with an alternative. The channel row is copied before editing so
	// replayed or recorded states are never mutated in place.
	if c.cfg.HandoverProb > 0 {
		for i := range c.deviceActive {
			if !c.deviceActive[i] || !r.Bernoulli(c.cfg.HandoverProb) {
				continue
			}
			if k := c.strongestWithAlternative(st, i); k >= 0 {
				row := make([]units.SpectralEfficiency, len(st.Channels[i]))
				copy(row, st.Channels[i])
				row[k] = 0
				st.Channels[i] = row
				events = append(events, ChurnEvent{Kind: Handover, Device: i, Server: -1, Station: k})
			}
		}
	}

	// At most one server removal, restricted to servers whose loss keeps
	// every station that reaches them connected to another active server.
	if c.cfg.ServerRemoveProb > 0 && r.Bernoulli(c.cfg.ServerRemoveProb) {
		if removable := c.removableServers(); len(removable) > 0 {
			n := removable[r.Intn(len(removable))]
			c.serverActive[n] = false
			events = append(events, ChurnEvent{Kind: ServerRemove, Device: -1, Server: n, Station: -1})
		}
	}

	// At most one server re-activation.
	if c.cfg.ServerAddProb > 0 && r.Bernoulli(c.cfg.ServerAddProb) {
		var removed []int
		for n, a := range c.serverActive {
			if !a {
				removed = append(removed, n)
			}
		}
		if len(removed) > 0 {
			n := removed[r.Intn(len(removed))]
			c.serverActive[n] = true
			events = append(events, ChurnEvent{Kind: ServerAdd, Device: -1, Server: n, Station: -1})
		}
	}

	st.DeviceActive = maskCopy(c.deviceActive)
	st.ServerActive = maskCopy(c.serverActive)
	st.Churn = events
	return st
}

// covered reports whether device i is inside any station's coverage.
func (c *ChurnSchedule) covered(st *State, i int) bool {
	for k := range st.Channels[i] {
		if st.Channels[i][k] > 0 {
			return true
		}
	}
	return false
}

// strongestWithAlternative returns the strongest covered station of
// device i when at least one other covered station exists, -1 otherwise.
func (c *ChurnSchedule) strongestWithAlternative(st *State, i int) int {
	best, count := -1, 0
	for k, h := range st.Channels[i] {
		if h <= 0 {
			continue
		}
		count++
		if best < 0 || h > st.Channels[i][best] {
			best = k
		}
	}
	if count < 2 {
		return -1
	}
	return best
}

// removableServers lists the active servers whose removal leaves every
// station that reaches them with at least one other active reachable
// server (no station — and hence no covered device — is ever stranded).
func (c *ChurnSchedule) removableServers() []int {
	totalActive := 0
	for _, a := range c.serverActive {
		if a {
			totalActive++
		}
	}
	if totalActive <= 1 {
		return nil
	}
	stations, _, _, _ := c.net.Counts()
	var removable []int
	for n, a := range c.serverActive {
		if !a {
			continue
		}
		ok := true
		for k := 0; k < stations && ok; k++ {
			reach := c.net.ReachableServers(k)
			reaches, others := false, 0
			for _, m := range reach {
				if m == n {
					reaches = true
				} else if c.serverActive[m] {
					others++
				}
			}
			if reaches && others == 0 {
				ok = false
			}
		}
		if ok {
			removable = append(removable, n)
		}
	}
	return removable
}

// maskCopy returns a copy of the mask, or nil when every entry is true —
// a full population publishes nil so downstream code takes the exact
// legacy path.
func maskCopy(mask []bool) []bool {
	full := true
	for _, a := range mask {
		if !a {
			full = false
			break
		}
	}
	if full {
		return nil
	}
	out := make([]bool, len(mask))
	copy(out, mask)
	return out
}
