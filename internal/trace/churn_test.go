package trace

import (
	"reflect"
	"testing"

	"eotora/internal/topology"
)

// churnHarness builds a small network plus two independent generators of
// the same seed, so a churned and an unchurned stream can be compared
// slot for slot.
func churnHarness(t *testing.T, devices int) (*topology.Network, *Generator, *Generator) {
	t.Helper()
	net := testNetwork(t, devices)
	genA, err := NewGenerator(net, DefaultGeneratorConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	genB, err := NewGenerator(net, DefaultGeneratorConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	return net, genA, genB
}

func TestChurnConfigValidate(t *testing.T) {
	bad := []ChurnConfig{
		{DeviceJoinProb: -0.1, InitialActiveFraction: 1},
		{DeviceLeaveProb: 1.5, InitialActiveFraction: 1},
		{HandoverProb: -1, InitialActiveFraction: 1},
		{ServerRemoveProb: 2, InitialActiveFraction: 1},
		{ServerAddProb: -0.5, InitialActiveFraction: 1},
		{MinActiveDevices: -1, InitialActiveFraction: 1},
		{InitialActiveFraction: 0},
		{InitialActiveFraction: 1.01},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	if err := DefaultChurnConfig(1).Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestChurnScheduleNeedsDevices(t *testing.T) {
	net := testNetwork(t, 10)
	gen, err := NewGenerator(net, DefaultGeneratorConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	empty, err := topology.Generate(topology.DefaultSpec(0), nil)
	if err == nil {
		if _, err := NewChurnSchedule(DefaultChurnConfig(1), empty, gen); err == nil {
			t.Error("schedule accepted a network without devices")
		}
	}
	if _, err := NewChurnSchedule(ChurnConfig{InitialActiveFraction: -1}, net, gen); err == nil {
		t.Error("schedule accepted an invalid config")
	}
}

// TestChurnZeroPassthrough: a zero-probability config with a full initial
// population is a bit-exact passthrough — nil masks, no events, and every
// state field identical to the wrapped source.
func TestChurnZeroPassthrough(t *testing.T) {
	net, genA, genB := churnHarness(t, 20)
	cfg := ChurnConfig{Seed: 3, InitialActiveFraction: 1}
	sched, err := NewChurnSchedule(cfg, net, genA)
	if err != nil {
		t.Fatal(err)
	}
	if sched.Period() != genB.Period() {
		t.Errorf("Period %d, want %d", sched.Period(), genB.Period())
	}
	for slot := 0; slot < 40; slot++ {
		got, want := sched.Next(), genB.Next()
		if got.DeviceActive != nil || got.ServerActive != nil {
			t.Fatalf("slot %d: zero-churn state carries activity masks", slot)
		}
		if len(got.Churn) != 0 {
			t.Fatalf("slot %d: zero-churn state carries %d events", slot, len(got.Churn))
		}
		if !reflect.DeepEqual(got.TaskSizes, want.TaskSizes) ||
			!reflect.DeepEqual(got.DataLengths, want.DataLengths) ||
			!reflect.DeepEqual(got.Channels, want.Channels) ||
			!reflect.DeepEqual(got.FronthaulSE, want.FronthaulSE) ||
			got.Price != want.Price {
			t.Fatalf("slot %d: zero-churn state diverged from the wrapped source", slot)
		}
	}
}

// TestChurnDeterminism: two schedules of the same config over identical
// sources publish identical masks and event lists at every slot.
func TestChurnDeterminism(t *testing.T) {
	net, genA, genB := churnHarness(t, 25)
	cfg := DefaultChurnConfig(17)
	cfg.HandoverProb = 0.2 // make events frequent enough to compare
	a, err := NewChurnSchedule(cfg, net, genA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewChurnSchedule(cfg, net, genB)
	if err != nil {
		t.Fatal(err)
	}
	events := 0
	for slot := 0; slot < 60; slot++ {
		sa, sb := a.Next(), b.Next()
		if !reflect.DeepEqual(sa.DeviceActive, sb.DeviceActive) ||
			!reflect.DeepEqual(sa.ServerActive, sb.ServerActive) ||
			!reflect.DeepEqual(sa.Churn, sb.Churn) {
			t.Fatalf("slot %d: same-seed schedules diverged", slot)
		}
		events += len(sa.Churn)
	}
	if events == 0 {
		t.Fatal("no churn events in 60 slots — probabilities not applied?")
	}
}

// TestChurnInvariants walks a lively schedule and asserts the structural
// guards: the device floor holds, joined devices are covered, handed-over
// devices keep at least one covered station, and no station that reaches
// any server is left without an active reachable server.
func TestChurnInvariants(t *testing.T) {
	net, genA, _ := churnHarness(t, 30)
	cfg := ChurnConfig{
		Seed:                  9,
		DeviceJoinProb:        0.1,
		DeviceLeaveProb:       0.3,
		HandoverProb:          0.3,
		ServerRemoveProb:      0.5,
		ServerAddProb:         0.2,
		MinActiveDevices:      4,
		InitialActiveFraction: 0.5,
	}
	sched, err := NewChurnSchedule(cfg, net, genA)
	if err != nil {
		t.Fatal(err)
	}
	stations, _, servers, devices := net.Counts()
	kinds := make(map[ChurnKind]int)
	for slot := 0; slot < 200; slot++ {
		st := sched.Next()
		active := st.ActiveDevices(devices)
		if active < cfg.MinActiveDevices {
			t.Fatalf("slot %d: %d active devices below floor %d", slot, active, cfg.MinActiveDevices)
		}
		for _, ev := range st.Churn {
			kinds[ev.Kind]++
			switch ev.Kind {
			case DeviceJoin, DeviceLeave, Handover:
				if ev.Device < 0 || ev.Device >= devices || ev.Server != -1 {
					t.Fatalf("slot %d: malformed device event %+v", slot, ev)
				}
			case ServerAdd, ServerRemove:
				if ev.Server < 0 || ev.Server >= servers || ev.Device != -1 {
					t.Fatalf("slot %d: malformed server event %+v", slot, ev)
				}
			}
			if ev.Kind == Handover {
				if st.Channels[ev.Device][ev.Station] != 0 {
					t.Fatalf("slot %d: handover left channel (%d, %d) nonzero", slot, ev.Device, ev.Station)
				}
				covered := false
				for _, h := range st.Channels[ev.Device] {
					if h > 0 {
						covered = true
					}
				}
				if !covered {
					t.Fatalf("slot %d: handover stranded device %d", slot, ev.Device)
				}
			}
		}
		// Every station that reaches any server must still reach an
		// active one, so no covered device can be stranded by removals.
		for k := 0; k < stations; k++ {
			reach := net.ReachableServers(k)
			if len(reach) == 0 {
				continue
			}
			ok := false
			for _, n := range reach {
				if st.ActiveServer(n) {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("slot %d: station %d has no active reachable server", slot, k)
			}
		}
	}
	for _, k := range []ChurnKind{DeviceJoin, DeviceLeave, Handover, ServerRemove, ServerAdd} {
		if kinds[k] == 0 {
			t.Errorf("no %v events in 200 slots with aggressive probabilities", k)
		}
	}
}

// TestChurnCopyOnWriteChannels: handover edits must not write through to
// rows shared with a recorded or replayed state.
func TestChurnCopyOnWriteChannels(t *testing.T) {
	net, genA, genB := churnHarness(t, 20)
	cfg := ChurnConfig{Seed: 2, HandoverProb: 1, InitialActiveFraction: 1}
	sched, err := NewChurnSchedule(cfg, net, genA)
	if err != nil {
		t.Fatal(err)
	}
	for slot := 0; slot < 10; slot++ {
		st, clean := sched.Next(), genB.Next()
		handed := false
		for _, ev := range st.Churn {
			if ev.Kind != Handover {
				continue
			}
			handed = true
			if clean.Channels[ev.Device][ev.Station] == 0 {
				t.Fatalf("slot %d: test premise broken — station %d was already zero", slot, ev.Station)
			}
		}
		if handed {
			return
		}
	}
	t.Fatal("no handover fired in 10 slots with probability 1")
}

// TestChurnMaskCopy: a full mask publishes nil (the exact legacy path), a
// partial one publishes an independent copy.
func TestChurnMaskCopy(t *testing.T) {
	if got := maskCopy([]bool{true, true, true}); got != nil {
		t.Errorf("full mask published %v, want nil", got)
	}
	src := []bool{true, false, true}
	got := maskCopy(src)
	if !reflect.DeepEqual(got, src) {
		t.Fatalf("maskCopy = %v, want %v", got, src)
	}
	got[1] = true
	if src[1] {
		t.Error("maskCopy aliases its input")
	}
}

// TestChurnKindString covers the Stringer, including the unknown case.
func TestChurnKindString(t *testing.T) {
	want := map[ChurnKind]string{
		DeviceJoin:   "device-join",
		DeviceLeave:  "device-leave",
		Handover:     "handover",
		ServerAdd:    "server-add",
		ServerRemove: "server-remove",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(k), k.String(), s)
		}
	}
	if ChurnKind(99).String() != "churn-kind(99)" {
		t.Errorf("unknown kind = %q", ChurnKind(99).String())
	}
}

// TestStateActiveAccessors: nil masks and out-of-range indices read as
// active; explicit masks are honored.
func TestStateActiveAccessors(t *testing.T) {
	st := &State{}
	if !st.ActiveDevice(0) || !st.ActiveServer(5) {
		t.Error("nil masks must read as active")
	}
	if st.ActiveDevices(3) != 3 || st.ActiveServers(2) != 2 {
		t.Error("nil masks must count the full universe")
	}
	st.DeviceActive = []bool{true, false}
	st.ServerActive = []bool{false}
	if st.ActiveDevice(1) || !st.ActiveDevice(0) || st.ActiveServer(0) {
		t.Error("explicit masks not honored")
	}
	if !st.ActiveDevice(7) || !st.ActiveServer(7) {
		t.Error("out-of-range indices must read as active")
	}
	if st.ActiveDevices(2) != 1 || st.ActiveServers(1) != 0 {
		t.Error("mask counts wrong")
	}
}
