package trace

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"

	"eotora/internal/units"
)

// LoadColumnCSV parses a CSV stream with a header row and returns the
// named column as floats. Rows with an empty cell in the column are
// skipped; malformed numbers are errors. Column matching is
// case-insensitive.
func LoadColumnCSV(r io.Reader, column string) ([]float64, error) {
	if column == "" {
		return nil, errors.New("trace: empty column name")
	}
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // tolerate ragged rows; the column index governs
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	col := -1
	for i, name := range header {
		if strings.EqualFold(strings.TrimSpace(name), column) {
			col = i
			break
		}
	}
	if col < 0 {
		return nil, fmt.Errorf("trace: column %q not in header %v", column, header)
	}
	var out []float64
	for line := 2; ; line++ {
		record, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d: %w", line, err)
		}
		if col >= len(record) || strings.TrimSpace(record[col]) == "" {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(record[col]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: CSV line %d column %q: %w", line, column, err)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, errors.New("trace: CSV column has no values")
	}
	return out, nil
}

// LoadPriceCSV reads an electricity-price series (in $/MWh) from a CSV
// column — e.g. the "LBMP ($/MWHr)" column of an NYISO real-time market
// export. Non-positive prices are rejected: the simulator's cost model
// assumes markets clear above zero.
func LoadPriceCSV(r io.Reader, column string) ([]units.Price, error) {
	vals, err := LoadColumnCSV(r, column)
	if err != nil {
		return nil, err
	}
	prices := make([]units.Price, len(vals))
	for i, v := range vals {
		if v <= 0 {
			return nil, fmt.Errorf("trace: non-positive price %v at row %d", v, i+1)
		}
		prices[i] = units.Price(v)
	}
	return prices, nil
}

// NormalizeLevels rescales an arbitrary non-negative series (e.g. hourly
// video view counts) into demand levels in [0, 1], for use as
// GeneratorConfig.DemandLevels.
func NormalizeLevels(series []float64) ([]float64, error) {
	if len(series) == 0 {
		return nil, errors.New("trace: empty series")
	}
	lo, hi := series[0], series[0]
	for _, v := range series {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi == lo {
		out := make([]float64, len(series))
		for i := range out {
			out[i] = 0.5
		}
		return out, nil
	}
	out := make([]float64, len(series))
	for i, v := range series {
		out[i] = (v - lo) / (hi - lo)
	}
	return out, nil
}
