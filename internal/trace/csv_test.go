package trace

import (
	"math"
	"strings"
	"testing"

	"eotora/internal/rng"
	"eotora/internal/topology"
	"eotora/internal/units"
)

const nyisoSample = `Time Stamp,Name,PTID,LBMP ($/MWHr),Marginal Cost Losses ($/MWHr)
01/01/2023 00:00,N.Y.C.,61761,35.17,1.21
01/01/2023 01:00,N.Y.C.,61761,32.50,1.10
01/01/2023 02:00,N.Y.C.,61761,,0.95
01/01/2023 03:00,N.Y.C.,61761,28.04,0.90
`

func TestLoadColumnCSV(t *testing.T) {
	vals, err := LoadColumnCSV(strings.NewReader(nyisoSample), "LBMP ($/MWHr)")
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{35.17, 32.50, 28.04} // empty cell skipped
	if len(vals) != len(want) {
		t.Fatalf("vals = %v, want %v", vals, want)
	}
	for i := range want {
		if vals[i] != want[i] {
			t.Errorf("vals[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
}

func TestLoadColumnCSVCaseInsensitive(t *testing.T) {
	vals, err := LoadColumnCSV(strings.NewReader("Price\n10\n20\n"), "price")
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 2 || vals[0] != 10 {
		t.Errorf("vals = %v", vals)
	}
}

func TestLoadColumnCSVErrors(t *testing.T) {
	tests := []struct {
		name   string
		csv    string
		column string
	}{
		{"empty column name", "a\n1\n", ""},
		{"missing column", "a,b\n1,2\n", "c"},
		{"malformed number", "a\nnot-a-number\n", "a"},
		{"no rows", "a\n", "a"},
		{"empty stream", "", "a"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := LoadColumnCSV(strings.NewReader(tt.csv), tt.column); err == nil {
				t.Error("accepted invalid input")
			}
		})
	}
}

func TestLoadPriceCSV(t *testing.T) {
	prices, err := LoadPriceCSV(strings.NewReader(nyisoSample), "LBMP ($/MWHr)")
	if err != nil {
		t.Fatal(err)
	}
	if len(prices) != 3 || prices[0] != 35.17 {
		t.Errorf("prices = %v", prices)
	}
	if _, err := LoadPriceCSV(strings.NewReader("p\n-5\n"), "p"); err == nil {
		t.Error("negative price accepted")
	}
	if _, err := LoadPriceCSV(strings.NewReader("p\n0\n"), "p"); err == nil {
		t.Error("zero price accepted")
	}
}

func TestNormalizeLevels(t *testing.T) {
	got, err := NormalizeLevels([]float64{10, 20, 30})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0, 0.5, 1}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Errorf("levels[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Constant series → all 0.5.
	flat, err := NormalizeLevels([]float64{7, 7})
	if err != nil {
		t.Fatal(err)
	}
	if flat[0] != 0.5 || flat[1] != 0.5 {
		t.Errorf("flat levels = %v", flat)
	}
	if _, err := NormalizeLevels(nil); err == nil {
		t.Error("empty series accepted")
	}
}

func TestGeneratorPriceSeriesReplay(t *testing.T) {
	net, err := topology.Generate(topology.DefaultSpec(5), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	series := []units.Price{10, 20, 30}
	cfg := DefaultGeneratorConfig()
	cfg.PriceSeries = series
	g, err := NewGenerator(net, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 7; s++ {
		st := g.Next()
		if want := series[s%3]; st.Price != want {
			t.Fatalf("slot %d price = %v, want %v", s+1, st.Price, want)
		}
	}
}

func TestDemandLevelsReplay(t *testing.T) {
	cfg := DefaultDemandConfig()
	cfg.Levels = []float64{0, 1}
	cfg.TrendWeight = 1 // pure replay: no noise
	d := NewDemandProcess(cfg, 4, rng.New(2))
	// Slot 0 → level 0 → TaskMin; slot 1 → level 1 → TaskMax.
	tasks, _ := d.Next()
	for i, f := range tasks {
		if f != cfg.TaskMin {
			t.Errorf("slot 0 device %d task %v, want min %v", i, f, cfg.TaskMin)
		}
	}
	tasks, _ = d.Next()
	for i, f := range tasks {
		if f != cfg.TaskMax {
			t.Errorf("slot 1 device %d task %v, want max %v", i, f, cfg.TaskMax)
		}
	}
}

func TestDemandLevelsClamped(t *testing.T) {
	cfg := DefaultDemandConfig()
	cfg.Levels = []float64{-0.5, 1.5}
	cfg.TrendWeight = 1
	d := NewDemandProcess(cfg, 2, rng.New(3))
	tasks, _ := d.Next()
	if tasks[0] != cfg.TaskMin {
		t.Errorf("below-range level not clamped: %v", tasks[0])
	}
	tasks, _ = d.Next()
	if tasks[0] != cfg.TaskMax {
		t.Errorf("above-range level not clamped: %v", tasks[0])
	}
}
