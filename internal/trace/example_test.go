package trace_test

import (
	"fmt"
	"log"
	"strings"

	"eotora/internal/trace"
)

// ExampleLoadPriceCSV feeds a real NYISO-format export into the simulator's
// price model.
func ExampleLoadPriceCSV() {
	csv := `Time Stamp,Name,LBMP ($/MWHr)
01/01/2026 00:00,N.Y.C.,28.41
01/01/2026 01:00,N.Y.C.,26.03
01/01/2026 02:00,N.Y.C.,24.92
`
	prices, err := trace.LoadPriceCSV(strings.NewReader(csv), "LBMP ($/MWHr)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(prices), "prices, first:", prices[0])
	// Output:
	// 3 prices, first: $28.41/MWh
}

// ExampleNormalizeLevels turns a raw demand trace (e.g. hourly video view
// counts) into the [0, 1] levels the demand process replays.
func ExampleNormalizeLevels() {
	views := []float64{1200, 4800, 3000}
	levels, err := trace.NormalizeLevels(views)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.2f\n", levels)
	// Output:
	// [0.00 1.00 0.50]
}
