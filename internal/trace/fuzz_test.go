package trace

import (
	"strings"
	"testing"
)

// FuzzLoadColumnCSV checks the CSV loader never panics and never returns
// both a value and an error on arbitrary input.
func FuzzLoadColumnCSV(f *testing.F) {
	f.Add("price\n10\n20\n", "price")
	f.Add(nyisoSample, "LBMP ($/MWHr)")
	f.Add("", "x")
	f.Add("a,b\n1\n2,3,4\n", "b")
	f.Add("p\nNaN\n", "p")
	f.Add("p\n1e309\n", "p")
	f.Add("\"q,uoted\"\n5\n", "q,uoted")
	f.Fuzz(func(t *testing.T, csv, column string) {
		vals, err := LoadColumnCSV(strings.NewReader(csv), column)
		if err != nil && vals != nil {
			t.Error("both values and error returned")
		}
		if err == nil && len(vals) == 0 {
			t.Error("nil error with empty values")
		}
	})
}

// FuzzLoadPriceCSV checks the price loader rejects non-positive values and
// never panics.
func FuzzLoadPriceCSV(f *testing.F) {
	f.Add("p\n50\n")
	f.Add("p\n-1\n")
	f.Add("p\n0\n")
	f.Fuzz(func(t *testing.T, csv string) {
		prices, err := LoadPriceCSV(strings.NewReader(csv), "p")
		if err != nil {
			return
		}
		for _, p := range prices {
			if p <= 0 {
				t.Errorf("non-positive price %v accepted", p)
			}
		}
	})
}
