package trace

import (
	"fmt"

	"eotora/internal/rng"
	"eotora/internal/topology"
	"eotora/internal/units"
)

// GeneratorConfig assembles the three state processes into a full β_t
// source for a network.
type GeneratorConfig struct {
	// Price configures the electricity-price process p_t.
	Price PriceConfig
	// Demand configures the task-size and data-length processes.
	Demand DemandConfig
	// Channel configures the access-link spectral-efficiency process.
	Channel ChannelConfig

	// IID, when true, removes the periodic trends from all processes
	// (Period = 1, TrendWeight = 0), producing the iid system states that
	// the related work assumes. Used by the non-iid ablation.
	IID bool

	// FronthaulJitterSigma, when positive, makes the fronthaul spectral
	// efficiencies h_k^F vary per slot (multiplicative lognormal jitter),
	// exercising the paper's claim that the algorithm also handles
	// time-varying fronthaul.
	FronthaulJitterSigma float64

	// PriceSeries, when non-empty, replaces the synthetic price process
	// with a cyclic replay of the given series — e.g. real NYISO prices
	// loaded with LoadPriceCSV. The series should span whole periods for
	// the DPP analysis to apply cleanly.
	PriceSeries []units.Price

	// FlashCrowd optionally superimposes a Markov-switching demand surge
	// (see FlashCrowdConfig) on top of the periodic trend.
	FlashCrowd FlashCrowdConfig
}

// DefaultGeneratorConfig returns the paper's Section VI-A state processes.
func DefaultGeneratorConfig() GeneratorConfig {
	return GeneratorConfig{
		Price:   DefaultPriceConfig(),
		Demand:  DefaultDemandConfig(),
		Channel: DefaultChannelConfig(),
	}
}

// Generator produces β_t for a network. It implements Source.
type Generator struct {
	net     *topology.Network
	cfg     GeneratorConfig
	price   *PriceProcess
	demand  *DemandProcess
	channel *ChannelProcess
	fhSrc   *rng.Source
	crowd   *regime
	slot    int
	// InFlash reports whether the last generated slot was in the flash
	// regime (observability for experiments).
	InFlash bool
}

var _ Source = (*Generator)(nil)

// NewGenerator builds a state generator for the network. The seed controls
// all randomness; two generators with equal configuration and seed produce
// identical state sequences.
func NewGenerator(net *topology.Network, cfg GeneratorConfig, seed int64) (*Generator, error) {
	_, _, _, devices := net.Counts()
	if devices == 0 {
		return nil, fmt.Errorf("trace: network has no devices")
	}
	if cfg.IID {
		cfg.Price.Period = 1
		cfg.Demand.Period = 1
		cfg.Demand.TrendWeight = 0
	}
	root := rng.New(seed)
	g := &Generator{
		net:     net,
		cfg:     cfg,
		price:   NewPriceProcess(cfg.Price, root.Derive("price")),
		demand:  NewDemandProcess(cfg.Demand, devices, root.Derive("demand")),
		channel: NewChannelProcess(cfg.Channel, net, root.Derive("channel")),
		fhSrc:   root.Derive("fronthaul"),
		crowd:   newRegime(cfg.FlashCrowd, root.Derive("flashcrowd")),
	}
	return g, nil
}

// Period implements Source, returning the demand/price trend period D.
// Weekly patterns (weekend discounts) extend the effective period to a
// full 7-day week.
func (g *Generator) Period() int {
	if g.cfg.IID {
		return 1
	}
	period := g.cfg.Demand.Period
	if g.cfg.Demand.WeekendDiscount > 0 || g.cfg.Price.WeekendDiscount > 0 {
		period *= 7
	}
	return period
}

// Next implements Source.
func (g *Generator) Next() *State {
	g.slot++
	tasks, data := g.demand.Next()
	g.InFlash = g.crowd.step()
	if g.InFlash {
		scale := g.cfg.FlashCrowd.Scale
		for i := range tasks {
			tasks[i] = units.Cycles(rng.Clamp(float64(tasks[i])*scale,
				float64(g.cfg.Demand.TaskMin), float64(g.cfg.Demand.TaskMax)*scale))
			data[i] = units.DataSize(rng.Clamp(float64(data[i])*scale,
				float64(g.cfg.Demand.DataMin), float64(g.cfg.Demand.DataMax)*scale))
		}
	}
	st := &State{
		Slot:        g.slot,
		TaskSizes:   tasks,
		DataLengths: data,
		Channels:    g.channel.Next(),
		FronthaulSE: g.fronthaul(),
		Price:       g.nextPrice(),
	}
	return st
}

func (g *Generator) nextPrice() units.Price {
	if len(g.cfg.PriceSeries) > 0 {
		return g.cfg.PriceSeries[(g.slot-1)%len(g.cfg.PriceSeries)]
	}
	return g.price.Next()
}

func (g *Generator) fronthaul() []units.SpectralEfficiency {
	out := make([]units.SpectralEfficiency, len(g.net.BaseStations))
	for k := range out {
		se := g.net.BaseStations[k].FronthaulSE
		if g.cfg.FronthaulJitterSigma > 0 {
			se = units.SpectralEfficiency(float64(se) * g.fhSrc.LogNormal(0, g.cfg.FronthaulJitterSigma))
		}
		out[k] = se
	}
	return out
}

// Replay is a Source that replays a recorded sequence of states, cycling
// when exhausted. It supports deterministic experiment replays and tests.
type Replay struct {
	states []*State
	period int
	idx    int
}

var _ Source = (*Replay)(nil)

// NewReplay builds a replaying source. period is the nominal trend period
// to report; states must be non-empty.
func NewReplay(states []*State, period int) (*Replay, error) {
	if len(states) == 0 {
		return nil, fmt.Errorf("trace: replay needs at least one state")
	}
	if period <= 0 {
		period = 1
	}
	return &Replay{states: states, period: period}, nil
}

// Next implements Source.
func (r *Replay) Next() *State {
	s := r.states[r.idx%len(r.states)]
	r.idx++
	return s
}

// Period implements Source.
func (r *Replay) Period() int { return r.period }

// Record draws n consecutive states from a source into a slice, for replay
// or offline analysis.
func Record(src Source, n int) []*State {
	out := make([]*State, n)
	for i := range out {
		out[i] = src.Next()
	}
	return out
}
