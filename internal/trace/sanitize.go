package trace

import (
	"math"

	"eotora/internal/units"
)

// Sanitizer wraps a Source and repairs invalid fields in every state
// before it reaches the controller: NaN, infinite, or negative task sizes,
// data lengths, channel gains, fronthaul efficiencies, and prices are
// replaced with the last good value seen in the same position (or a safe
// default before any good value exists), and a device whose entire channel
// row was zeroed — which would strand it with no coverage — gets its last
// good row restored. Out-of-range CapScale entries are clamped to the
// nominal 1.
//
// The sanitizer is opt-in: sources not wrapped in one flow through
// untouched, and a wrapped source emitting only valid states is returned
// unmodified (bit-identical), with the last-good buffers updated as a side
// effect. Repairs happen in place on the source's state and in reused
// buffers, so the steady-state path allocates only while the buffers grow
// to the state's dimensions.
type Sanitizer struct {
	src     Source
	repairs int

	// Last-good copies, reused across slots.
	goodTasks    []units.Cycles
	goodData     []units.DataSize
	goodChannels [][]units.SpectralEfficiency
	goodFront    []units.SpectralEfficiency
	goodPrice    units.Price
}

// Fallbacks used before any good value has been observed for a field.
// They are deliberately bland — a small task on a modest channel — so a
// corrupted first slot degrades gracefully instead of failing validation.
const (
	fallbackTask    = 50e6 // 50 megacycles, the paper's demand floor
	fallbackData    = 3e6  // 3 megabits, the paper's data floor
	fallbackChannel = 15   // bps/Hz, the paper's channel floor
	fallbackPrice   = 25   // $/MWh, an off-peak NYISO level
)

// NewSanitizer wraps src in a repairing filter.
func NewSanitizer(src Source) *Sanitizer {
	return &Sanitizer{src: src}
}

// Period implements Source.
func (z *Sanitizer) Period() int { return z.src.Period() }

// Repairs returns the total number of fields repaired so far.
func (z *Sanitizer) Repairs() int { return z.repairs }

// Next implements Source: it pulls the next state from the wrapped source,
// repairs it in place, and remembers the repaired values as the new last
// good state.
func (z *Sanitizer) Next() *State {
	st := z.src.Next()
	z.repairs += z.Apply(st)
	return st
}

// Apply repairs st in place against the sanitizer's last-good state and
// returns the number of fields repaired. It is exported for the fuzz
// harness (FuzzSanitizeState), which feeds it adversarial states directly;
// after Apply, every numeric field of st is finite and in range, so no NaN
// can reach the controller's virtual queue. Apply also refreshes the
// last-good buffers from the repaired state.
func (z *Sanitizer) Apply(st *State) int {
	n := 0
	for i := range st.TaskSizes {
		if bad(st.TaskSizes[i].Count()) {
			st.TaskSizes[i] = goodAt(z.goodTasks, i, fallbackTask)
			n++
		}
	}
	for i := range st.DataLengths {
		if bad(st.DataLengths[i].Bits()) {
			st.DataLengths[i] = goodAt(z.goodData, i, fallbackData)
			n++
		}
	}
	for i := range st.Channels {
		row := st.Channels[i]
		if len(row) == 0 {
			// A zero-station row is a shape defect, not a corrupted value;
			// CheckState rejects it and there is nothing here to repair.
			continue
		}
		covered := false
		for k := range row {
			if bad(row[k].BpsPerHz()) {
				row[k] = 0 // repaired below if the whole row went dark
				n++
			}
			if row[k] > 0 {
				covered = true
			}
		}
		if !covered {
			// The device lost all coverage to corruption: restore its last
			// good row, or pin it to station 0 before one exists.
			if i < len(z.goodChannels) && len(z.goodChannels[i]) == len(row) {
				copy(row, z.goodChannels[i])
			} else {
				row[0] = fallbackChannel
			}
			n++
		}
	}
	for k := range st.FronthaulSE {
		if v := st.FronthaulSE[k].BpsPerHz(); bad(v) || v == 0 {
			st.FronthaulSE[k] = goodAt(z.goodFront, k, fallbackChannel)
			n++
		}
	}
	if p := float64(st.Price); bad(p) || p == 0 {
		if z.goodPrice > 0 {
			st.Price = z.goodPrice
		} else {
			st.Price = fallbackPrice
		}
		n++
	}
	for i := range st.CapScale {
		if c := st.CapScale[i]; math.IsNaN(c) || c <= 0 || c > 1 {
			st.CapScale[i] = 1
			n++
		}
	}

	// The state is now valid; it becomes the last good one.
	z.goodTasks = append(z.goodTasks[:0], st.TaskSizes...)
	z.goodData = append(z.goodData[:0], st.DataLengths...)
	z.goodFront = append(z.goodFront[:0], st.FronthaulSE...)
	if cap(z.goodChannels) < len(st.Channels) {
		z.goodChannels = make([][]units.SpectralEfficiency, len(st.Channels))
	} else {
		z.goodChannels = z.goodChannels[:len(st.Channels)]
	}
	for i := range st.Channels {
		z.goodChannels[i] = append(z.goodChannels[i][:0], st.Channels[i]...)
	}
	z.goodPrice = st.Price
	return n
}

// bad reports a value unusable as a non-negative finite quantity.
func bad(v float64) bool {
	return math.IsNaN(v) || math.IsInf(v, 0) || v < 0
}

// goodAt returns good[i] when it exists and is positive, else the
// fallback.
func goodAt[T ~float64](good []T, i int, fallback T) T {
	if i < len(good) && good[i] > 0 {
		return good[i]
	}
	return fallback
}
