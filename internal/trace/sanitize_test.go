package trace

import (
	"math"
	"reflect"
	"testing"

	"eotora/internal/units"
)

// sampleState builds a small valid state by hand.
func sampleState() *State {
	return &State{
		Slot:        1,
		TaskSizes:   []units.Cycles{60e6, 80e6},
		DataLengths: []units.DataSize{4e6, 5e6},
		Channels: [][]units.SpectralEfficiency{
			{18, 0},
			{0, 20},
		},
		FronthaulSE: []units.SpectralEfficiency{30, 28},
		Price:       40,
	}
}

// checkFinite asserts the invariant Apply guarantees: every numeric field
// finite and usable (prices and fronthaul strictly positive, every device
// covered by at least one station).
func checkFinite(t *testing.T, st *State) {
	t.Helper()
	for i, v := range st.TaskSizes {
		if f := v.Count(); math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
			t.Fatalf("task %d = %v after sanitize", i, f)
		}
	}
	for i, v := range st.DataLengths {
		if f := v.Bits(); math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
			t.Fatalf("data %d = %v after sanitize", i, f)
		}
	}
	for i, row := range st.Channels {
		covered := false
		for k, v := range row {
			f := v.BpsPerHz()
			if math.IsNaN(f) || math.IsInf(f, 0) || f < 0 {
				t.Fatalf("channel [%d][%d] = %v after sanitize", i, k, f)
			}
			if f > 0 {
				covered = true
			}
		}
		if len(row) > 0 && !covered {
			t.Fatalf("device %d left with no coverage after sanitize", i)
		}
	}
	for k, v := range st.FronthaulSE {
		if f := v.BpsPerHz(); math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
			t.Fatalf("fronthaul %d = %v after sanitize", k, f)
		}
	}
	if p := float64(st.Price); math.IsNaN(p) || math.IsInf(p, 0) || p <= 0 {
		t.Fatalf("price = %v after sanitize", p)
	}
	for n, c := range st.CapScale {
		if math.IsNaN(c) || c <= 0 || c > 1 {
			t.Fatalf("cap scale %d = %v after sanitize", n, c)
		}
	}
}

// TestSanitizerPassThrough: valid states flow through bit-identical with
// zero repairs.
func TestSanitizerPassThrough(t *testing.T) {
	st := sampleState()
	want := *st
	wantTasks := append([]units.Cycles(nil), st.TaskSizes...)
	z := NewSanitizer(nil)
	if n := z.Apply(st); n != 0 {
		t.Fatalf("valid state repaired %d times", n)
	}
	if !reflect.DeepEqual(st.TaskSizes, wantTasks) || st.Price != want.Price {
		t.Error("valid state modified")
	}
}

// TestSanitizerRepairsCorruption: each corruption class is repaired, the
// repair count is reported, and the result satisfies the invariant.
func TestSanitizerRepairsCorruption(t *testing.T) {
	z := NewSanitizer(nil)
	z.Apply(sampleState()) // seed the last-good buffers

	st := sampleState()
	st.TaskSizes[0] = units.Cycles(math.NaN())
	st.DataLengths[1] = -5
	st.Channels[0][0] = units.SpectralEfficiency(math.Inf(1))
	st.FronthaulSE[1] = 0
	st.Price = units.Price(math.NaN())
	st.CapScale = []float64{math.NaN(), 2}
	n := z.Apply(st)
	if n == 0 {
		t.Fatal("no repairs reported for a corrupted state")
	}
	checkFinite(t, st)
	// Repairs restore the last good values where one exists.
	if st.TaskSizes[0] != 60e6 {
		t.Errorf("task 0 repaired to %v, want last good 60e6", st.TaskSizes[0])
	}
	if st.Price != 40 {
		t.Errorf("price repaired to %v, want last good 40", st.Price)
	}
}

// TestSanitizerDarkRow: zeroing a device's whole channel row restores its
// last good row (or pins station 0 before any good row exists).
func TestSanitizerDarkRow(t *testing.T) {
	z := NewSanitizer(nil)
	z.Apply(sampleState())
	st := sampleState()
	st.Channels[1][0], st.Channels[1][1] = 0, 0
	if n := z.Apply(st); n == 0 {
		t.Fatal("dark row not repaired")
	}
	if st.Channels[1][1] != 20 {
		t.Errorf("dark row restored to %v, want last good {0, 20}", st.Channels[1])
	}

	// Before any good row exists, the fallback pins station 0.
	fresh := NewSanitizer(nil)
	st2 := sampleState()
	st2.Channels[0][0], st2.Channels[0][1] = 0, 0
	fresh.Apply(st2)
	if st2.Channels[0][0] <= 0 {
		t.Errorf("first-slot dark row not pinned: %v", st2.Channels[0])
	}
}

// TestSanitizerSourceWrapping: the Source face pulls, repairs, and counts.
func TestSanitizerSourceWrapping(t *testing.T) {
	corrupt := sampleState()
	corrupt.TaskSizes[1] = units.Cycles(math.Inf(1))
	re, err := NewReplay([]*State{sampleState(), corrupt}, 2)
	if err != nil {
		t.Fatal(err)
	}
	z := NewSanitizer(re)
	if z.Period() != 2 {
		t.Errorf("Period = %d, want 2", z.Period())
	}
	first := z.Next()
	checkFinite(t, first)
	if z.Repairs() != 0 {
		t.Errorf("clean slot repaired %d fields", z.Repairs())
	}
	second := z.Next()
	checkFinite(t, second)
	if z.Repairs() != 1 {
		t.Errorf("Repairs = %d, want 1", z.Repairs())
	}
	if second.TaskSizes[1] != 80e6 {
		t.Errorf("task repaired to %v, want 80e6", second.TaskSizes[1])
	}
}

// FuzzSanitizeState feeds adversarial states straight into Apply and
// requires the output to satisfy the invariant that protects the
// controller's virtual queue: after sanitizing, no NaN/Inf/negative value
// survives anywhere a latency or cost term reads, so no NaN can reach
// Q(t) through θ(t).
func FuzzSanitizeState(f *testing.F) {
	f.Add(float64(60e6), float64(4e6), float64(18), float64(30), float64(40), float64(1), uint8(0))
	f.Add(math.NaN(), math.Inf(1), -1.0, 0.0, math.NaN(), -3.0, uint8(3))
	f.Add(-7.5, math.NaN(), math.Inf(-1), math.NaN(), 0.0, 9.0, uint8(7))
	f.Fuzz(func(t *testing.T, task, data, channel, front, price, capScale float64, shape uint8) {
		st := &State{
			Slot:        1,
			TaskSizes:   []units.Cycles{units.Cycles(task), 70e6},
			DataLengths: []units.DataSize{5e6, units.DataSize(data)},
			Channels: [][]units.SpectralEfficiency{
				{units.SpectralEfficiency(channel), 0},
				{units.SpectralEfficiency(channel), units.SpectralEfficiency(front)},
			},
			FronthaulSE: []units.SpectralEfficiency{units.SpectralEfficiency(front), 25},
			Price:       units.Price(price),
			CapScale:    []float64{capScale, 1},
		}
		z := NewSanitizer(nil)
		if shape&1 != 0 {
			z.Apply(sampleState()) // pre-seed last-good buffers
		}
		if shape&2 != 0 {
			st.CapScale = nil
		}
		if shape&4 != 0 {
			st.Channels[0] = st.Channels[0][:0] // a device with no stations
		}
		z.Apply(st)
		checkFinite(t, st)
		// Idempotence: a sanitized state needs no further repairs.
		if n := z.Apply(st); n != 0 {
			t.Fatalf("second Apply repaired %d fields on a sanitized state", n)
		}
	})
}
