// Package trace generates the time-varying system states β_t = (f_t, d_t,
// h_t, p_t) of the paper's Section III: task sizes, input data lengths,
// channel conditions, and electricity prices.
//
// Following the paper's modeling of real-world data (Figure 2), every
// scalar state decomposes as a deterministic periodic trend with period D
// plus iid noise: f_t = f̄_t + e^f_t, d_t = d̄_t + e^d_t, p_t = p̄_t + e^p_t.
// The paper's traces come from NYISO real-time prices and an hourly video
// viewership series; neither dataset ships with this repository, so the
// processes here are synthetic equivalents calibrated to the same scale
// and diurnal shape (see DESIGN.md §2 for the substitution rationale).
//
// Channel conditions h_{i,k,t} are driven by a random-waypoint mobility
// model: each device walks the deployment area, and the spectral
// efficiency toward a covering base station mean-reverts around a
// distance-dependent level inside the paper's 15–50 bps/Hz range. A zero
// efficiency marks an out-of-coverage pair.
package trace

import (
	"math"

	"eotora/internal/rng"
	"eotora/internal/units"
)

// State is the full system state β_t observed at the start of a slot.
type State struct {
	// Slot is the 1-based slot index t.
	Slot int

	// TaskSizes holds f_{i,t} for every device.
	TaskSizes []units.Cycles

	// DataLengths holds d_{i,t} for every device.
	DataLengths []units.DataSize

	// Channels holds h_{i,k,t}: Channels[i][k] is the access-link spectral
	// efficiency between device i and station k, and zero when the device
	// is outside the station's coverage.
	Channels [][]units.SpectralEfficiency

	// FronthaulSE holds h_k^F per station. The paper treats fronthaul
	// efficiency as time-invariant; the generator can optionally vary it
	// (the extension claimed in Section III-A).
	FronthaulSE []units.SpectralEfficiency

	// Price is the electricity price p_t.
	Price units.Price

	// ServerDown, when non-nil, advisorily marks servers to drain this
	// slot (fault injection, maintenance windows): the P2-A game builder
	// skips pairs targeting a down server whenever the device has an
	// alternative, falling back to ignoring the drain when it would leave
	// a device with no feasible pair. Core validation stays permissive —
	// a decision using a down server is degraded, not infeasible. Nil
	// means all servers up.
	ServerDown []bool

	// CapScale, when non-nil, scales each server's effective computing
	// capacity this slot: 1 = nominal, 0.5 = half the capacity lost.
	// Entries must lie in (0, 1]. The scale enters the P2-A compute
	// weights, the reduced latency, and the P2-B objective; energy draw
	// is left at the nominal model (a degraded server still burns power).
	// Nil means nominal capacity everywhere.
	CapScale []float64

	// DeviceActive, when non-nil, marks which devices of the fixed
	// topology universe participate this slot (churn: joins and leaves).
	// An inactive device offloads nothing, contributes no latency, and
	// must carry the (-1, -1) selection. Nil means every device active.
	DeviceActive []bool

	// ServerActive, when non-nil, marks which servers structurally exist
	// this slot (churn: ServerAdd/ServerRemove). Unlike the advisory
	// ServerDown drain, an inactive server is removed from the model: no
	// P2-A pair may target it, no device may select it, and it draws no
	// energy. Nil means every server present.
	ServerActive []bool

	// Churn lists the population events applied when producing this slot
	// relative to the previous one (observability for sweeps and logs).
	// Nil means no churn occurred.
	Churn []ChurnEvent
}

// Covered reports whether device i can currently use station k.
func (s *State) Covered(i, k int) bool {
	return s.Channels[i][k] > 0
}

// Down reports whether server n is advisorily drained this slot. Out-of-
// range indices and a nil ServerDown read as up.
func (s *State) Down(n int) bool {
	return n >= 0 && n < len(s.ServerDown) && s.ServerDown[n]
}

// Cap returns server n's capacity scale this slot (1 when CapScale is nil
// or the index is out of range). Multiplying a capacity by the nominal
// scale 1 is bit-exact in IEEE 754, so callers may apply it
// unconditionally without disturbing fault-free results.
func (s *State) Cap(n int) float64 {
	if n < 0 || n >= len(s.CapScale) {
		return 1
	}
	return s.CapScale[n]
}

// ActiveDevice reports whether device i participates this slot. Out-of-
// range indices and a nil DeviceActive read as active, so fault-free
// fixed-population states behave exactly as before the churn model.
func (s *State) ActiveDevice(i int) bool {
	return i < 0 || i >= len(s.DeviceActive) || s.DeviceActive[i]
}

// ActiveServer reports whether server n structurally exists this slot.
// Out-of-range indices and a nil ServerActive read as present.
func (s *State) ActiveServer(n int) bool {
	return n < 0 || n >= len(s.ServerActive) || s.ServerActive[n]
}

// ActiveDevices returns the number of participating devices given the
// universe size, counting every device when DeviceActive is nil.
func (s *State) ActiveDevices(universe int) int {
	if s.DeviceActive == nil {
		return universe
	}
	active := 0
	for _, a := range s.DeviceActive {
		if a {
			active++
		}
	}
	return active
}

// ActiveServers returns the number of present servers given the universe
// size, counting every server when ServerActive is nil.
func (s *State) ActiveServers(universe int) int {
	if s.ServerActive == nil {
		return universe
	}
	active := 0
	for _, a := range s.ServerActive {
		if a {
			active++
		}
	}
	return active
}

// Source produces consecutive system states. Implementations are
// deterministic given their seed.
type Source interface {
	// Next returns the state of the next slot, advancing the source.
	Next() *State
	// Period returns the trend period D in slots (1 for iid sources).
	Period() int
}

// diurnal is a smooth 24-hour load shape in [0, 1] with a morning shoulder
// and an evening peak, the qualitative shape of both the NYISO price curve
// and the video-viewership curve in the paper's Figure 2.
func diurnal(hour float64) float64 {
	// Two raised cosines centered at 9h and 20h.
	morning := 0.6 * bump(hour, 9, 4.5)
	evening := 1.0 * bump(hour, 20, 3.5)
	base := 0.12
	v := base + morning + evening
	if v > 1 {
		v = 1
	}
	return v
}

// bump is a raised-cosine pulse of the given half-width centered at c,
// wrapped on a 24-hour circle.
func bump(hour, c, halfWidth float64) float64 {
	d := math.Mod(math.Abs(hour-c), 24)
	if d > 12 {
		d = 24 - d
	}
	if d >= halfWidth {
		return 0
	}
	return 0.5 * (1 + math.Cos(math.Pi*d/halfWidth))
}

// PriceConfig parameterizes the synthetic NYISO-like price process.
type PriceConfig struct {
	// Base is the off-peak price level in $/MWh.
	Base units.Price
	// Amplitude is the additional diurnal swing in $/MWh.
	Amplitude units.Price
	// NoiseSigma is the lognormal sigma of the multiplicative iid noise.
	NoiseSigma float64
	// SpikeProb is the per-slot probability of a scarcity spike.
	SpikeProb float64
	// SpikeScale multiplies the price during a spike.
	SpikeScale float64
	// Period is the trend period D in slots (24 for hourly slots).
	Period int
	// WeekendDiscount in [0, 1) lowers the trend on the last two days of
	// each 7-period week (demand-driven prices fall on weekends). Zero
	// disables the weekly pattern; when enabled the effective trend
	// period is 7·Period.
	WeekendDiscount float64
}

// DefaultPriceConfig returns a configuration calibrated to NYISO real-time
// prices: ~$25/MWh off-peak, ~$70/MWh evening peak, occasional spikes.
func DefaultPriceConfig() PriceConfig {
	return PriceConfig{
		Base:       25,
		Amplitude:  45,
		NoiseSigma: 0.12,
		SpikeProb:  0.01,
		SpikeScale: 2.5,
		Period:     24,
	}
}

// PriceProcess generates p_t = p̄_t + e_t^p.
type PriceProcess struct {
	cfg PriceConfig
	src *rng.Source
	t   int
}

// NewPriceProcess returns a price process drawing noise from src.
func NewPriceProcess(cfg PriceConfig, src *rng.Source) *PriceProcess {
	if cfg.Period <= 0 {
		cfg.Period = 1
	}
	return &PriceProcess{cfg: cfg, src: src}
}

// Trend returns the deterministic periodic component p̄_t.
func (p *PriceProcess) Trend(slot int) units.Price {
	hour := float64(slot % p.cfg.Period)
	frac := diurnal(hour * 24 / float64(p.cfg.Period))
	trend := p.cfg.Base + units.Price(frac*float64(p.cfg.Amplitude))
	if p.cfg.WeekendDiscount > 0 && isWeekend(slot, p.cfg.Period) {
		trend *= units.Price(1 - p.cfg.WeekendDiscount)
	}
	return trend
}

// isWeekend reports whether the slot falls on day 6 or 7 of its
// 7-period week.
func isWeekend(slot, period int) bool {
	return (slot/period)%7 >= 5
}

// Next returns the next price.
func (p *PriceProcess) Next() units.Price {
	trend := p.Trend(p.t)
	p.t++
	noise := p.src.LogNormal(0, p.cfg.NoiseSigma)
	price := units.Price(float64(trend) * noise)
	if p.cfg.SpikeProb > 0 && p.src.Bernoulli(p.cfg.SpikeProb) {
		price *= units.Price(p.cfg.SpikeScale)
	}
	if price < 1 {
		price = 1 // floor: markets clear above zero for the horizons we model
	}
	return price
}

// DemandConfig parameterizes task sizes f_{i,t} and data lengths d_{i,t}.
type DemandConfig struct {
	// TaskMin/TaskMax bound f_{i,t} (paper: 50–200 mega cycles).
	TaskMin, TaskMax units.Cycles
	// DataMin/DataMax bound d_{i,t} (paper: 3–10 megabits).
	DataMin, DataMax units.DataSize
	// TrendWeight ∈ [0, 1] is the share of the range driven by the diurnal
	// trend; the rest is iid noise. Zero yields fully iid states (the
	// ablation baseline of the related-work comparison).
	TrendWeight float64
	// Period is the trend period D in slots.
	Period int
	// Levels, when non-empty, replaces the built-in diurnal trend with a
	// cyclic replay of the given per-slot demand levels in [0, 1] — e.g.
	// a normalized real viewership trace (see NormalizeLevels). Device
	// phase offsets do not apply to replayed levels.
	Levels []float64
	// WeekendDiscount in [0, 1) lowers the diurnal trend on the last two
	// days of each 7-period week. Zero disables it; it does not apply to
	// replayed Levels.
	WeekendDiscount float64
}

// DefaultDemandConfig returns the paper's Section VI-A demand ranges with
// a diurnal trend.
func DefaultDemandConfig() DemandConfig {
	return DemandConfig{
		TaskMin:     50 * units.MegaCycles,
		TaskMax:     200 * units.MegaCycles,
		DataMin:     3 * units.Megabit,
		DataMax:     10 * units.Megabit,
		TrendWeight: 0.6,
		Period:      24,
	}
}

// DemandProcess generates per-device task sizes and data lengths with a
// shared diurnal trend and per-device iid noise. Each device gets a small
// random phase offset so loads do not move in lockstep.
type DemandProcess struct {
	cfg    DemandConfig
	src    *rng.Source
	phases []float64 // per-device trend phase offsets in hours
	t      int
}

// NewDemandProcess returns a demand process for the given device count.
func NewDemandProcess(cfg DemandConfig, devices int, src *rng.Source) *DemandProcess {
	if cfg.Period <= 0 {
		cfg.Period = 1
	}
	phases := make([]float64, devices)
	for i := range phases {
		phases[i] = src.Uniform(-1.5, 1.5)
	}
	return &DemandProcess{cfg: cfg, src: src, phases: phases}
}

// TrendFraction returns the deterministic trend level in [0, 1] for device
// i at the given slot.
func (d *DemandProcess) TrendFraction(i, slot int) float64 {
	if len(d.cfg.Levels) > 0 {
		return rng.Clamp(d.cfg.Levels[slot%len(d.cfg.Levels)], 0, 1)
	}
	hour := math.Mod(float64(slot%d.cfg.Period)*24/float64(d.cfg.Period)+d.phases[i]+24, 24)
	level := diurnal(hour)
	if d.cfg.WeekendDiscount > 0 && isWeekend(slot, d.cfg.Period) {
		level *= 1 - d.cfg.WeekendDiscount
	}
	return level
}

// Next returns the next slot's task sizes and data lengths.
func (d *DemandProcess) Next() (tasks []units.Cycles, data []units.DataSize) {
	tasks = make([]units.Cycles, len(d.phases))
	data = make([]units.DataSize, len(d.phases))
	for i := range d.phases {
		frac := d.cfg.TrendWeight*d.TrendFraction(i, d.t) + (1-d.cfg.TrendWeight)*d.src.Float64()
		tasks[i] = d.cfg.TaskMin + units.Cycles(frac*float64(d.cfg.TaskMax-d.cfg.TaskMin))
		// Data length follows the same congestion level with its own noise:
		// d and f are correlated but not proportional (the paper presumes
		// no specific relation).
		fracD := d.cfg.TrendWeight*d.TrendFraction(i, d.t) + (1-d.cfg.TrendWeight)*d.src.Float64()
		data[i] = d.cfg.DataMin + units.DataSize(fracD*float64(d.cfg.DataMax-d.cfg.DataMin))
	}
	d.t++
	return tasks, data
}

// FlashCrowdConfig adds a two-state Markov regime to the demand process:
// in the "flash" regime every device's demand is scaled up, modeling the
// sudden crowds (stadium events, viral content) that fall outside the
// paper's periodic-plus-iid state class. The DPP controller makes no
// distributional assumption about β_t at decision time, so this is a
// robustness extension, not a change to the algorithm.
type FlashCrowdConfig struct {
	// Enabled turns the regime process on.
	Enabled bool
	// OnProb is the per-slot probability of entering the flash regime
	// from normal; OffProb of leaving it.
	OnProb, OffProb float64
	// Scale multiplies task sizes and data lengths during a flash,
	// clamped to the configured demand ranges.
	Scale float64
}

// DefaultFlashCrowdConfig returns rare, short, intense crowds: ~2% entry
// per slot, mean duration ~4 slots, 3× demand.
func DefaultFlashCrowdConfig() FlashCrowdConfig {
	return FlashCrowdConfig{Enabled: true, OnProb: 0.02, OffProb: 0.25, Scale: 3}
}

// regime tracks the Markov state across slots.
type regime struct {
	cfg   FlashCrowdConfig
	src   *rng.Source
	flash bool
}

func newRegime(cfg FlashCrowdConfig, src *rng.Source) *regime {
	return &regime{cfg: cfg, src: src}
}

// step advances one slot and reports whether the flash regime is active.
func (r *regime) step() bool {
	if !r.cfg.Enabled {
		return false
	}
	if r.flash {
		if r.src.Bernoulli(r.cfg.OffProb) {
			r.flash = false
		}
	} else if r.src.Bernoulli(r.cfg.OnProb) {
		r.flash = true
	}
	return r.flash
}
