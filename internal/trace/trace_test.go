package trace

import (
	"math"
	"testing"

	"eotora/internal/rng"
	"eotora/internal/stats"
	"eotora/internal/topology"
	"eotora/internal/units"
)

func TestDiurnalShape(t *testing.T) {
	// The shape must be in [0, 1] everywhere and peak in the evening.
	for h := 0.0; h < 24; h += 0.25 {
		v := diurnal(h)
		if v < 0 || v > 1 {
			t.Fatalf("diurnal(%v) = %v outside [0,1]", h, v)
		}
	}
	if diurnal(20) <= diurnal(3) {
		t.Error("evening peak not higher than night trough")
	}
	if diurnal(9) <= diurnal(3) {
		t.Error("morning shoulder not higher than night trough")
	}
	if diurnal(20) <= diurnal(14) {
		t.Error("evening peak not higher than afternoon")
	}
}

func TestBumpProperties(t *testing.T) {
	if bump(9, 9, 4) != 1 {
		t.Error("bump not 1 at center")
	}
	if bump(13, 9, 4) != 0 {
		t.Error("bump not 0 at half-width")
	}
	if bump(20, 9, 4) != 0 {
		t.Error("bump not 0 far away")
	}
	// Wrapping: hour 23 is distance 2 from hour 1.
	if math.Abs(bump(23, 1, 4)-bump(3, 1, 4)) > 1e-12 {
		t.Error("bump does not wrap on the 24h circle")
	}
}

func TestPriceProcessScaleAndPeriodicity(t *testing.T) {
	p := NewPriceProcess(DefaultPriceConfig(), rng.New(1))
	const days = 30
	prices := make([]float64, 0, days*24)
	for i := 0; i < days*24; i++ {
		prices = append(prices, p.Next().PerMWh())
	}
	mean := stats.Mean(prices)
	if mean < 15 || mean > 120 {
		t.Errorf("mean price $%v/MWh outside NYISO-like range", mean)
	}
	if stats.Min(prices) < 1 {
		t.Errorf("price floor violated: %v", stats.Min(prices))
	}
	// Peak-hour average must exceed trough-hour average (diurnal trend).
	var peak, trough []float64
	for i, v := range prices {
		switch i % 24 {
		case 20:
			peak = append(peak, v)
		case 3:
			trough = append(trough, v)
		}
	}
	if stats.Mean(peak) <= stats.Mean(trough) {
		t.Errorf("no diurnal pattern: peak %v ≤ trough %v", stats.Mean(peak), stats.Mean(trough))
	}
}

func TestPriceTrendPeriodic(t *testing.T) {
	p := NewPriceProcess(DefaultPriceConfig(), rng.New(2))
	for slot := 0; slot < 24; slot++ {
		if p.Trend(slot) != p.Trend(slot+24) {
			t.Fatalf("trend not periodic at slot %d", slot)
		}
	}
}

func TestPriceProcessDeterminism(t *testing.T) {
	a := NewPriceProcess(DefaultPriceConfig(), rng.New(5))
	b := NewPriceProcess(DefaultPriceConfig(), rng.New(5))
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same-seed price processes diverged at slot %d", i)
		}
	}
}

func TestPriceConfigZeroPeriodDefaultsToOne(t *testing.T) {
	cfg := DefaultPriceConfig()
	cfg.Period = 0
	p := NewPriceProcess(cfg, rng.New(1))
	if p.cfg.Period != 1 {
		t.Errorf("period = %d, want 1", p.cfg.Period)
	}
}

func TestDemandProcessRanges(t *testing.T) {
	cfg := DefaultDemandConfig()
	d := NewDemandProcess(cfg, 50, rng.New(3))
	for slot := 0; slot < 200; slot++ {
		tasks, data := d.Next()
		if len(tasks) != 50 || len(data) != 50 {
			t.Fatalf("wrong lengths %d/%d", len(tasks), len(data))
		}
		for i := range tasks {
			if tasks[i] < cfg.TaskMin || tasks[i] > cfg.TaskMax {
				t.Fatalf("task size %v outside [%v, %v]", tasks[i], cfg.TaskMin, cfg.TaskMax)
			}
			if data[i] < cfg.DataMin || data[i] > cfg.DataMax {
				t.Fatalf("data length %v outside [%v, %v]", data[i], cfg.DataMin, cfg.DataMax)
			}
		}
	}
}

func TestDemandDiurnalTrend(t *testing.T) {
	cfg := DefaultDemandConfig()
	cfg.TrendWeight = 1 // pure trend to expose periodicity
	d := NewDemandProcess(cfg, 20, rng.New(4))
	var peakSum, troughSum float64
	const days = 10
	for slot := 0; slot < days*24; slot++ {
		tasks, _ := d.Next()
		var mean float64
		for _, f := range tasks {
			mean += float64(f)
		}
		mean /= float64(len(tasks))
		switch slot % 24 {
		case 20:
			peakSum += mean
		case 3:
			troughSum += mean
		}
	}
	if peakSum <= troughSum {
		t.Errorf("no diurnal demand trend: peak %v ≤ trough %v", peakSum/days, troughSum/days)
	}
}

func TestDemandIIDWhenTrendWeightZero(t *testing.T) {
	cfg := DefaultDemandConfig()
	cfg.TrendWeight = 0
	d := NewDemandProcess(cfg, 30, rng.New(5))
	// Hour-of-day means should be statistically indistinguishable; use a
	// loose bound on the ratio of hourly means.
	hourMeans := make([]float64, 24)
	hourCounts := make([]int, 24)
	for slot := 0; slot < 24*60; slot++ {
		tasks, _ := d.Next()
		for _, f := range tasks {
			hourMeans[slot%24] += float64(f)
			hourCounts[slot%24]++
		}
	}
	for h := range hourMeans {
		hourMeans[h] /= float64(hourCounts[h])
	}
	ratio := stats.Max(hourMeans) / stats.Min(hourMeans)
	if ratio > 1.05 {
		t.Errorf("iid demand shows hourly structure: max/min hourly mean = %v", ratio)
	}
}

func testNetwork(t *testing.T, devices int) *topology.Network {
	t.Helper()
	net, err := topology.Generate(topology.DefaultSpec(devices), rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestChannelProcessCoverageAndRange(t *testing.T) {
	net := testNetwork(t, 30)
	cfg := DefaultChannelConfig()
	p := NewChannelProcess(cfg, net, rng.New(6))
	for slot := 0; slot < 50; slot++ {
		h := p.Next()
		if len(h) != 30 {
			t.Fatalf("matrix has %d rows", len(h))
		}
		for i := range h {
			covered := 0
			for k := range h[i] {
				se := float64(h[i][k])
				if se == 0 {
					continue
				}
				covered++
				if se < float64(cfg.SEMin) || se > float64(cfg.SEMax) {
					t.Fatalf("h[%d][%d] = %v outside [%v, %v]", i, k, se, cfg.SEMin, cfg.SEMax)
				}
			}
			if covered == 0 {
				t.Fatalf("device %d uncovered at slot %d despite umbrella stations", i, slot)
			}
		}
	}
}

func TestChannelDistanceDependence(t *testing.T) {
	// A device under the tower must out-average a device at the cell edge.
	net := &topology.Network{
		BaseStations: []topology.BaseStation{{
			ID: 0, Band: topology.LowBand, Pos: topology.Point{X: 0, Y: 0},
			CoverageRadius: 1000, AccessBandwidth: 50 * units.MHz,
			FronthaulBandwidth: 500 * units.MHz, FronthaulSE: 10,
			Fronthaul: topology.WiredFiber, Rooms: []int{0},
		}},
		Rooms:   []topology.Room{{ID: 0}},
		Servers: []topology.Server{{ID: 0, Room: 0, Cores: 64, MinFreq: units.GHz, MaxFreq: 2 * units.GHz}},
		Devices: []topology.Device{
			{ID: 0, Pos: topology.Point{X: 10, Y: 0}, Speed: 0},
			{ID: 1, Pos: topology.Point{X: 990, Y: 0}, Speed: 0},
		},
		Suitability: [][]float64{{1}, {1}},
	}
	if err := net.Finalize(); err != nil {
		t.Fatal(err)
	}
	p := NewChannelProcess(DefaultChannelConfig(), net, rng.New(7))
	var nearSum, farSum float64
	const slots = 400
	for s := 0; s < slots; s++ {
		h := p.Next()
		nearSum += float64(h[0][0])
		farSum += float64(h[1][0])
	}
	if nearSum <= farSum {
		t.Errorf("near device mean SE %v ≤ far device %v", nearSum/slots, farSum/slots)
	}
}

func TestChannelMobilityMovesDevices(t *testing.T) {
	net := testNetwork(t, 10)
	p := NewChannelProcess(DefaultChannelConfig(), net, rng.New(8))
	before := p.Positions()
	for s := 0; s < 5; s++ {
		p.Next()
	}
	after := p.Positions()
	moved := 0
	for i := range before {
		if before[i].DistanceTo(after[i]) > 1 {
			moved++
		}
	}
	if moved == 0 {
		t.Error("no device moved after five slots")
	}
}

func TestGeneratorFullState(t *testing.T) {
	net := testNetwork(t, 25)
	g, err := NewGenerator(net, DefaultGeneratorConfig(), 42)
	if err != nil {
		t.Fatal(err)
	}
	if g.Period() != 24 {
		t.Errorf("Period = %d, want 24", g.Period())
	}
	for slot := 1; slot <= 48; slot++ {
		st := g.Next()
		if st.Slot != slot {
			t.Fatalf("slot = %d, want %d", st.Slot, slot)
		}
		if len(st.TaskSizes) != 25 || len(st.DataLengths) != 25 || len(st.Channels) != 25 {
			t.Fatal("state dimension mismatch")
		}
		if len(st.FronthaulSE) != 6 {
			t.Fatalf("fronthaul entries = %d, want 6", len(st.FronthaulSE))
		}
		for k, se := range st.FronthaulSE {
			if se != 10 {
				t.Fatalf("static fronthaul SE[%d] = %v, want 10", k, se)
			}
		}
		if st.Price <= 0 {
			t.Fatal("non-positive price")
		}
		// Covered helper consistency.
		for i := range st.Channels {
			for k := range st.Channels[i] {
				if st.Covered(i, k) != (st.Channels[i][k] > 0) {
					t.Fatal("Covered inconsistent with channel matrix")
				}
			}
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	net := testNetwork(t, 15)
	g1, err := NewGenerator(net, DefaultGeneratorConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	// Positions are mutated by the channel process, so build a second
	// identical network for the second generator.
	net2 := testNetwork(t, 15)
	g2, err := NewGenerator(net2, DefaultGeneratorConfig(), 7)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 20; s++ {
		a, b := g1.Next(), g2.Next()
		if a.Price != b.Price {
			t.Fatalf("prices diverged at slot %d", s)
		}
		for i := range a.TaskSizes {
			if a.TaskSizes[i] != b.TaskSizes[i] {
				t.Fatalf("task sizes diverged at slot %d device %d", s, i)
			}
		}
		for i := range a.Channels {
			for k := range a.Channels[i] {
				if a.Channels[i][k] != b.Channels[i][k] {
					t.Fatalf("channels diverged at slot %d", s)
				}
			}
		}
	}
}

func TestGeneratorIIDMode(t *testing.T) {
	net := testNetwork(t, 10)
	cfg := DefaultGeneratorConfig()
	cfg.IID = true
	g, err := NewGenerator(net, cfg, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.Period() != 1 {
		t.Errorf("iid Period = %d, want 1", g.Period())
	}
}

func TestGeneratorFronthaulJitter(t *testing.T) {
	net := testNetwork(t, 10)
	cfg := DefaultGeneratorConfig()
	cfg.FronthaulJitterSigma = 0.2
	g, err := NewGenerator(net, cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	varied := false
	prev := g.Next().FronthaulSE[0]
	for s := 0; s < 10; s++ {
		cur := g.Next().FronthaulSE[0]
		if cur != prev {
			varied = true
		}
		if cur <= 0 {
			t.Fatal("jittered fronthaul SE non-positive")
		}
		prev = cur
	}
	if !varied {
		t.Error("fronthaul SE never varied under jitter")
	}
}

func TestReplayCycles(t *testing.T) {
	net := testNetwork(t, 5)
	g, err := NewGenerator(net, DefaultGeneratorConfig(), 3)
	if err != nil {
		t.Fatal(err)
	}
	states := Record(g, 4)
	r, err := NewReplay(states, 24)
	if err != nil {
		t.Fatal(err)
	}
	if r.Period() != 24 {
		t.Errorf("Period = %d, want 24", r.Period())
	}
	for i := 0; i < 10; i++ {
		if got := r.Next(); got != states[i%4] {
			t.Fatalf("replay index %d returned wrong state", i)
		}
	}
}

func TestReplayValidation(t *testing.T) {
	if _, err := NewReplay(nil, 24); err == nil {
		t.Error("empty replay accepted")
	}
	r, err := NewReplay([]*State{{Slot: 1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Period() != 1 {
		t.Errorf("zero period should default to 1, got %d", r.Period())
	}
}

func TestNewGeneratorRejectsEmptyNetwork(t *testing.T) {
	net := &topology.Network{}
	if _, err := NewGenerator(net, DefaultGeneratorConfig(), 1); err == nil {
		t.Error("generator accepted network without devices")
	}
}

func TestWeekendDiscountPrice(t *testing.T) {
	cfg := DefaultPriceConfig()
	cfg.WeekendDiscount = 0.3
	p := NewPriceProcess(cfg, rng.New(50))
	// Weekday noon (day 0) vs weekend noon (day 5).
	weekday := p.Trend(12)
	weekend := p.Trend(5*24 + 12)
	if math.Abs(float64(weekend)-0.7*float64(weekday)) > 1e-9 {
		t.Errorf("weekend trend %v, want 0.7 × weekday %v", weekend, weekday)
	}
	// Weekly periodicity: slot and slot+168 match.
	if p.Trend(30) != p.Trend(30+168) {
		t.Error("trend not weekly periodic")
	}
}

func TestWeekendDiscountDemand(t *testing.T) {
	cfg := DefaultDemandConfig()
	cfg.WeekendDiscount = 0.5
	cfg.TrendWeight = 1
	d := NewDemandProcess(cfg, 3, rng.New(51))
	// Compare the same device at the same hour on a weekday vs weekend.
	weekday := d.TrendFraction(0, 20)
	weekend := d.TrendFraction(0, 5*24+20)
	if math.Abs(weekend-0.5*weekday) > 1e-9 {
		t.Errorf("weekend level %v, want half of weekday %v", weekend, weekday)
	}
}

func TestGeneratorPeriodWithWeekly(t *testing.T) {
	net, err := topology.Generate(topology.DefaultSpec(3), rng.New(52))
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultGeneratorConfig()
	cfg.Price.WeekendDiscount = 0.2
	g, err := NewGenerator(net, cfg, 52)
	if err != nil {
		t.Fatal(err)
	}
	if g.Period() != 24*7 {
		t.Errorf("weekly Period = %d, want 168", g.Period())
	}
}

func TestFlashCrowdRegime(t *testing.T) {
	net := testNetwork(t, 10)
	cfg := DefaultGeneratorConfig()
	cfg.FlashCrowd = DefaultFlashCrowdConfig()
	cfg.FlashCrowd.OnProb = 0.2 // frequent for the test
	g, err := NewGenerator(net, cfg, 80)
	if err != nil {
		t.Fatal(err)
	}
	flashSlots, normalSlots := 0, 0
	var flashMean, normalMean float64
	const slots = 400
	for s := 0; s < slots; s++ {
		st := g.Next()
		var total float64
		for _, f := range st.TaskSizes {
			total += f.Count()
		}
		if g.InFlash {
			flashSlots++
			flashMean += total
		} else {
			normalSlots++
			normalMean += total
		}
	}
	if flashSlots == 0 || normalSlots == 0 {
		t.Fatalf("regimes not both visited: %d flash, %d normal", flashSlots, normalSlots)
	}
	flashMean /= float64(flashSlots)
	normalMean /= float64(normalSlots)
	if flashMean < normalMean*1.5 {
		t.Errorf("flash demand %v not clearly above normal %v", flashMean, normalMean)
	}
}

func TestFlashCrowdDisabledByDefault(t *testing.T) {
	net := testNetwork(t, 5)
	g, err := NewGenerator(net, DefaultGeneratorConfig(), 81)
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < 50; s++ {
		g.Next()
		if g.InFlash {
			t.Fatal("flash regime active without configuration")
		}
	}
}
