// Package units defines the typed physical quantities used throughout the
// EOTORA simulator: frequencies, data rates, data sizes, CPU work, power,
// energy, and money. Each quantity is a defined float64 type so that unit
// errors (e.g. passing bits where cycles are expected) are compile errors,
// while arithmetic stays allocation-free.
//
// Conventions follow the paper's notation:
//
//   - data lengths d are measured in bits,
//   - task sizes f are measured in CPU cycles,
//   - clock frequencies ω are cycles per second (Hz),
//   - bandwidths W are Hz, spectral efficiencies h are bps/Hz,
//   - electricity prices p are dollars per megawatt-hour,
//   - latencies are seconds.
package units

import (
	"fmt"
	"math"
)

// Frequency is a clock frequency or radio bandwidth in hertz.
type Frequency float64

// Common frequency scales.
const (
	Hz  Frequency = 1
	KHz Frequency = 1e3
	MHz Frequency = 1e6
	GHz Frequency = 1e9
)

// Hertz returns the frequency as a bare float64 in Hz.
func (f Frequency) Hertz() float64 { return float64(f) }

// GigaHertz returns the frequency expressed in GHz.
func (f Frequency) GigaHertz() float64 { return float64(f) / 1e9 }

func (f Frequency) String() string {
	switch {
	case f >= GHz:
		return fmt.Sprintf("%.3g GHz", float64(f)/1e9)
	case f >= MHz:
		return fmt.Sprintf("%.3g MHz", float64(f)/1e6)
	case f >= KHz:
		return fmt.Sprintf("%.3g kHz", float64(f)/1e3)
	default:
		return fmt.Sprintf("%.3g Hz", float64(f))
	}
}

// DataSize is an amount of data in bits.
type DataSize float64

// Common data-size scales (decimal, matching networking convention).
const (
	Bit     DataSize = 1
	Kilobit DataSize = 1e3
	Megabit DataSize = 1e6
	Gigabit DataSize = 1e9
)

// Bits returns the size as a bare float64 number of bits.
func (d DataSize) Bits() float64 { return float64(d) }

// Megabits returns the size expressed in megabits.
func (d DataSize) Megabits() float64 { return float64(d) / 1e6 }

func (d DataSize) String() string {
	switch {
	case d >= Gigabit:
		return fmt.Sprintf("%.3g Gb", float64(d)/1e9)
	case d >= Megabit:
		return fmt.Sprintf("%.3g Mb", float64(d)/1e6)
	case d >= Kilobit:
		return fmt.Sprintf("%.3g kb", float64(d)/1e3)
	default:
		return fmt.Sprintf("%.3g b", float64(d))
	}
}

// Cycles is an amount of CPU work in clock cycles.
type Cycles float64

// Common cycle scales.
const (
	Cycle      Cycles = 1
	MegaCycles Cycles = 1e6
	GigaCycles Cycles = 1e9
)

// Count returns the work as a bare float64 number of cycles.
func (c Cycles) Count() float64 { return float64(c) }

func (c Cycles) String() string {
	switch {
	case c >= GigaCycles:
		return fmt.Sprintf("%.3g Gcycles", float64(c)/1e9)
	case c >= MegaCycles:
		return fmt.Sprintf("%.3g Mcycles", float64(c)/1e6)
	default:
		return fmt.Sprintf("%.3g cycles", float64(c))
	}
}

// DataRate is a throughput in bits per second.
type DataRate float64

// BitsPerSecond returns the rate as a bare float64 in bps.
func (r DataRate) BitsPerSecond() float64 { return float64(r) }

func (r DataRate) String() string {
	switch {
	case r >= 1e9:
		return fmt.Sprintf("%.3g Gbps", float64(r)/1e9)
	case r >= 1e6:
		return fmt.Sprintf("%.3g Mbps", float64(r)/1e6)
	case r >= 1e3:
		return fmt.Sprintf("%.3g kbps", float64(r)/1e3)
	default:
		return fmt.Sprintf("%.3g bps", float64(r))
	}
}

// SpectralEfficiency is a modulation efficiency in bps/Hz; multiplying by an
// allocated bandwidth yields a DataRate.
type SpectralEfficiency float64

// BpsPerHz returns the efficiency as a bare float64 in bps/Hz.
func (s SpectralEfficiency) BpsPerHz() float64 { return float64(s) }

// Rate returns the data rate achieved over bandwidth w.
func (s SpectralEfficiency) Rate(w Frequency) DataRate {
	return DataRate(float64(s) * float64(w))
}

func (s SpectralEfficiency) String() string {
	return fmt.Sprintf("%.3g bps/Hz", float64(s))
}

// Power is an instantaneous power draw in watts.
type Power float64

// Common power scales.
const (
	Watt     Power = 1
	Kilowatt Power = 1e3
	Megawatt Power = 1e6
)

// Watts returns the power as a bare float64 in watts.
func (p Power) Watts() float64 { return float64(p) }

func (p Power) String() string {
	switch {
	case p >= Megawatt:
		return fmt.Sprintf("%.3g MW", float64(p)/1e6)
	case p >= Kilowatt:
		return fmt.Sprintf("%.3g kW", float64(p)/1e3)
	default:
		return fmt.Sprintf("%.3g W", float64(p))
	}
}

// Energy is an amount of energy in joules.
type Energy float64

// Joules returns the energy as a bare float64 in joules.
func (e Energy) Joules() float64 { return float64(e) }

// MegawattHours converts the energy to MWh (1 MWh = 3.6e9 J).
func (e Energy) MegawattHours() float64 { return float64(e) / 3.6e9 }

// Over returns the energy consumed by drawing power p for d seconds.
func Over(p Power, d Seconds) Energy { return Energy(float64(p) * float64(d)) }

// Price is an electricity price in dollars per megawatt-hour, the unit used
// by the NYISO day-ahead/real-time markets the paper draws prices from.
type Price float64

// PerMWh returns the price as a bare float64 in $/MWh.
func (p Price) PerMWh() float64 { return float64(p) }

// Cost returns the dollar cost of energy e at this price.
func (p Price) Cost(e Energy) Money {
	return Money(float64(p) * e.MegawattHours())
}

func (p Price) String() string { return fmt.Sprintf("$%.2f/MWh", float64(p)) }

// Money is a dollar amount.
type Money float64

// Dollars returns the amount as a bare float64 in dollars.
func (m Money) Dollars() float64 { return float64(m) }

func (m Money) String() string { return fmt.Sprintf("$%.4f", float64(m)) }

// Seconds is a duration in seconds, used for latencies and slot lengths.
// (The simulator's time axis is slot-indexed; time.Duration's nanosecond
// integer resolution is a poor fit for the continuous latencies produced by
// the closed-form expressions, so latencies stay in float seconds.)
type Seconds float64

// Value returns the duration as a bare float64 in seconds.
func (s Seconds) Value() float64 { return float64(s) }

func (s Seconds) String() string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3g s", float64(s))
	case s >= 1e-3:
		return fmt.Sprintf("%.3g ms", float64(s)*1e3)
	default:
		return fmt.Sprintf("%.3g µs", float64(s)*1e6)
	}
}

// TransmitTime returns the time to move d bits at rate r. Moving nothing
// takes no time even over a dead link; a positive payload over a zero
// rate returns +Inf so callers can treat unreachable links uniformly.
func TransmitTime(d DataSize, r DataRate) Seconds {
	if d <= 0 {
		return 0
	}
	if r <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(d) / float64(r))
}

// ProcessTime returns the time to execute f cycles at frequency w. Zero
// work completes instantly; positive work at zero frequency returns +Inf.
func ProcessTime(f Cycles, w Frequency) Seconds {
	if f <= 0 {
		return 0
	}
	if w <= 0 {
		return Seconds(math.Inf(1))
	}
	return Seconds(float64(f) / float64(w))
}
