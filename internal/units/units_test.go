package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFrequencyScales(t *testing.T) {
	tests := []struct {
		name string
		f    Frequency
		hz   float64
		ghz  float64
	}{
		{name: "one hertz", f: Hz, hz: 1, ghz: 1e-9},
		{name: "one kilohertz", f: KHz, hz: 1e3, ghz: 1e-6},
		{name: "one megahertz", f: MHz, hz: 1e6, ghz: 1e-3},
		{name: "one gigahertz", f: GHz, hz: 1e9, ghz: 1},
		{name: "typical cpu", f: 2.4 * GHz, hz: 2.4e9, ghz: 2.4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.f.Hertz(); got != tt.hz {
				t.Errorf("Hertz() = %v, want %v", got, tt.hz)
			}
			if got := tt.f.GigaHertz(); math.Abs(got-tt.ghz) > 1e-12 {
				t.Errorf("GigaHertz() = %v, want %v", got, tt.ghz)
			}
		})
	}
}

func TestFrequencyString(t *testing.T) {
	tests := []struct {
		f    Frequency
		want string
	}{
		{2.4 * GHz, "2.4 GHz"},
		{75 * MHz, "75 MHz"},
		{12 * KHz, "12 kHz"},
		{3 * Hz, "3 Hz"},
	}
	for _, tt := range tests {
		if got := tt.f.String(); got != tt.want {
			t.Errorf("%v.String() = %q, want %q", float64(tt.f), got, tt.want)
		}
	}
}

func TestDataSizeScales(t *testing.T) {
	if got := (6 * Megabit).Bits(); got != 6e6 {
		t.Errorf("Bits() = %v, want 6e6", got)
	}
	if got := (6 * Megabit).Megabits(); got != 6 {
		t.Errorf("Megabits() = %v, want 6", got)
	}
	if got := (2 * Gigabit).String(); got != "2 Gb" {
		t.Errorf("String() = %q, want %q", got, "2 Gb")
	}
	if got := (512 * Kilobit).String(); got != "512 kb" {
		t.Errorf("String() = %q, want %q", got, "512 kb")
	}
}

func TestCyclesScales(t *testing.T) {
	if got := (150 * MegaCycles).Count(); got != 1.5e8 {
		t.Errorf("Count() = %v, want 1.5e8", got)
	}
	if got := (150 * MegaCycles).String(); got != "150 Mcycles" {
		t.Errorf("String() = %q, want %q", got, "150 Mcycles")
	}
	if got := (3 * GigaCycles).String(); got != "3 Gcycles" {
		t.Errorf("String() = %q, want %q", got, "3 Gcycles")
	}
}

func TestSpectralEfficiencyRate(t *testing.T) {
	tests := []struct {
		name string
		se   SpectralEfficiency
		w    Frequency
		want DataRate
	}{
		{name: "midband", se: 30, w: 75 * MHz, want: 2.25e9},
		{name: "fronthaul", se: 10, w: 1 * GHz, want: 1e10},
		{name: "zero bandwidth", se: 30, w: 0, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.se.Rate(tt.w); math.Abs(float64(got-tt.want)) > 1e-3 {
				t.Errorf("Rate() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestTransmitTime(t *testing.T) {
	tests := []struct {
		name string
		d    DataSize
		r    DataRate
		want float64
	}{
		{name: "one second", d: 1e9, r: 1e9, want: 1},
		{name: "six megabit over gigabit", d: 6 * Megabit, r: 1e9, want: 6e-3},
		{name: "zero rate is infinite", d: Megabit, r: 0, want: math.Inf(1)},
		{name: "negative rate is infinite", d: Megabit, r: -5, want: math.Inf(1)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := TransmitTime(tt.d, tt.r).Value()
			if math.IsInf(tt.want, 1) {
				if !math.IsInf(got, 1) {
					t.Errorf("TransmitTime() = %v, want +Inf", got)
				}
				return
			}
			if math.Abs(got-tt.want) > 1e-12 {
				t.Errorf("TransmitTime() = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestProcessTime(t *testing.T) {
	if got := ProcessTime(3*GigaCycles, 2*GHz).Value(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("ProcessTime() = %v, want 1.5", got)
	}
	if got := ProcessTime(GigaCycles, 0).Value(); !math.IsInf(got, 1) {
		t.Errorf("ProcessTime() with zero frequency = %v, want +Inf", got)
	}
}

func TestEnergyConversions(t *testing.T) {
	// 1 MWh = 3.6e9 J.
	if got := Energy(3.6e9).MegawattHours(); math.Abs(got-1) > 1e-12 {
		t.Errorf("MegawattHours() = %v, want 1", got)
	}
	// 2 kW over one hour = 2 kWh = 7.2e6 J.
	e := Over(2*Kilowatt, 3600)
	if math.Abs(e.Joules()-7.2e6) > 1e-6 {
		t.Errorf("Over() = %v J, want 7.2e6", e.Joules())
	}
}

func TestPriceCost(t *testing.T) {
	// $50/MWh on 1 MWh of energy costs $50.
	cost := Price(50).Cost(Energy(3.6e9))
	if math.Abs(cost.Dollars()-50) > 1e-9 {
		t.Errorf("Cost() = %v, want $50", cost)
	}
	// Zero energy costs nothing regardless of price.
	if got := Price(120).Cost(0).Dollars(); got != 0 {
		t.Errorf("Cost(0) = %v, want 0", got)
	}
}

func TestSecondsString(t *testing.T) {
	tests := []struct {
		s    Seconds
		want string
	}{
		{2.5, "2.5 s"},
		{0.25, "250 ms"},
		{2.5e-4, "250 µs"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("%v.String() = %q, want %q", float64(tt.s), got, tt.want)
		}
	}
}

// Property: transmit time scales linearly in data size and inversely in rate.
func TestTransmitTimeScaling(t *testing.T) {
	prop := func(d, r float64) bool {
		if math.IsNaN(d) || math.IsNaN(r) || math.Abs(d) > 1e150 || math.Abs(r) > 1e150 {
			return true // avoid float overflow; not a unit-conversion concern
		}
		ds := DataSize(math.Abs(d) + 1)
		rate := DataRate(math.Abs(r) + 1)
		t1 := TransmitTime(ds, rate).Value()
		t2 := TransmitTime(2*ds, rate).Value()
		t3 := TransmitTime(ds, 2*rate).Value()
		return math.Abs(t2-2*t1) <= 1e-9*t1 && math.Abs(t3-t1/2) <= 1e-9*t1
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: cost is bilinear in price and energy.
func TestPriceCostBilinear(t *testing.T) {
	prop := func(p, e float64) bool {
		if math.IsNaN(p) || math.IsNaN(e) || math.Abs(p) > 1e150 || math.Abs(e) > 1e150 {
			return true // avoid float overflow; not a unit-conversion concern
		}
		price := Price(math.Abs(p))
		energy := Energy(math.Abs(e))
		c1 := price.Cost(energy).Dollars()
		c2 := Price(2 * math.Abs(p)).Cost(energy).Dollars()
		c3 := price.Cost(2 * energy).Dollars()
		return math.Abs(c2-2*c1) <= 1e-9*(c1+1e-300) && math.Abs(c3-2*c1) <= 1e-9*(c1+1e-300)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestStringMethods(t *testing.T) {
	tests := []struct {
		name string
		got  string
		want string
	}{
		{"rate gbps", DataRate(2.5e9).String(), "2.5 Gbps"},
		{"rate mbps", DataRate(30e6).String(), "30 Mbps"},
		{"rate kbps", DataRate(12e3).String(), "12 kbps"},
		{"rate bps", DataRate(5).String(), "5 bps"},
		{"spectral efficiency", SpectralEfficiency(30).String(), "30 bps/Hz"},
		{"power megawatt", Power(2e6).String(), "2 MW"},
		{"power kilowatt", Power(3.2e3).String(), "3.2 kW"},
		{"power watt", Power(45).String(), "45 W"},
		{"price", Price(52.5).String(), "$52.50/MWh"},
		{"money", Money(1.23456).String(), "$1.2346"},
		{"datasize bits", DataSize(12).String(), "12 b"},
		{"cycles plain", Cycles(500).String(), "500 cycles"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.got != tt.want {
				t.Errorf("String() = %q, want %q", tt.got, tt.want)
			}
		})
	}
}

func TestScalarAccessors(t *testing.T) {
	if got := DataRate(42).BitsPerSecond(); got != 42 {
		t.Errorf("BitsPerSecond = %v", got)
	}
	if got := SpectralEfficiency(7).BpsPerHz(); got != 7 {
		t.Errorf("BpsPerHz = %v", got)
	}
	if got := Power(9).Watts(); got != 9 {
		t.Errorf("Watts = %v", got)
	}
	if got := Energy(11).Joules(); got != 11 {
		t.Errorf("Joules = %v", got)
	}
	if got := Price(13).PerMWh(); got != 13 {
		t.Errorf("PerMWh = %v", got)
	}
	if got := Money(15).Dollars(); got != 15 {
		t.Errorf("Dollars = %v", got)
	}
	if got := Seconds(17).Value(); got != 17 {
		t.Errorf("Value = %v", got)
	}
	if got := Cycles(19).Count(); got != 19 {
		t.Errorf("Count = %v", got)
	}
}
