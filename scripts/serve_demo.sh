#!/bin/sh
# serve_demo.sh — the EXPERIMENTS.md serve-mode appendix run: two
# deterministic loadgen passes against cmd/eotorad in lockstep mode.
#
# Leg 1 (nominal): an uncapped queue absorbs the full diff stream; the
# per-slot CSV (serve_stream.csv) records ingest rate vs slot latency with
# zero shed and zero degraded slots.
#
# Leg 2 (overload): the queue is capped far below the per-slot event rate
# with a small apply batch, so the bounded queue saturates and sheds the
# overflow while backpressure escalation (a one-check slot budget) forces
# the saturated slots down the degradation ladder — the shed/degraded
# accounting the appendix tabulates. Both legs are seeded, so the numbers
# reproduce across runs (wall-clock latency aside).
#
# Environment overrides: SLOTS (default 200), DEVICES (150), PORT (18081),
# OUT (serve_stream.csv).
set -eu

SLOTS="${SLOTS:-200}"
DEVICES="${DEVICES:-150}"
PORT="${PORT:-18081}"
ADDR="http://127.0.0.1:$PORT"
OUT="${OUT:-serve_stream.csv}"

workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

boot() {
    "$workdir/eotorad" "$@" &
    daemon_pid=$!
    i=0
    until curl -fsS "$ADDR/v1/status" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -ge 50 ]; then
            echo "eotorad did not come up on $ADDR" >&2
            exit 1
        fi
        sleep 0.2
    done
}

halt() {
    kill -TERM "$daemon_pid" 2>/dev/null || true
    wait "$daemon_pid" 2>/dev/null || true
    daemon_pid=""
}

summarize() {
    # CSV columns: slot,events,accepted,shed,rung,elapsed_us,backlog
    awk -F, 'NR > 1 {
        n++; events += $2; us += $6
        if ($6 > worst) worst = $6
        if ($5 > 0) degraded++
    } END {
        printf "    %d slots, %.0f events/slot, mean slot %.1f ms, worst %.1f ms, degraded %d\n",
            n, events / n, us / n / 1000, worst / 1000, degraded
    }' "$1"
}

echo "== building eotorad and loadgen"
go build -o "$workdir/eotorad" ./cmd/eotorad
go build -o "$workdir/loadgen" ./cmd/loadgen

echo "== leg 1: nominal rate ($DEVICES devices, $SLOTS slots, uncapped queue)"
boot -listen "127.0.0.1:$PORT" -devices "$DEVICES" -tick 0
"$workdir/loadgen" -addr "$ADDR" -devices "$DEVICES" -slots "$SLOTS" -csv >"$OUT"
summarize "$OUT"
halt

echo "== leg 2: overload (queue-cap 256, max-batch 64, escalation armed)"
boot -listen "127.0.0.1:$PORT" -devices "$DEVICES" -tick 0 \
    -queue-cap 256 -max-batch 64 -degrade-at 0.5 -escalate-checks 1
"$workdir/loadgen" -addr "$ADDR" -devices "$DEVICES" -slots "$SLOTS" \
    -csv >"$workdir/overload.csv" || true
summarize "$workdir/overload.csv"
curl -fsS "$ADDR/v1/status" | tr -d ' \n' | sed 's/,"/\n    "/g' |
    grep -E 'events_shed|events_ingested|degraded_slots|escalations|queue_depth'
echo
halt

echo "wrote $OUT (nominal-leg per-slot stream)"
