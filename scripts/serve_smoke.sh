#!/bin/sh
# serve_smoke.sh — end-to-end serve-mode smoke: boot cmd/eotorad in
# lockstep mode, stream SLOTS slots of full state diffs through
# cmd/loadgen, scrape /metrics, and assert a clean run: every event
# accepted, every slot decided at the full rung, the measured ingest rate
# at or above MIN_RATE events/slot (the default 250 devices produce
# ~1.3k/slot), and the live counters agreeing with the stream. CI runs
# this as the serve-smoke job; `make smoke-serve` runs it locally.
#
# Environment overrides: SLOTS (default 200), DEVICES (250), PORT
# (18080), MIN_RATE (1000; set 0 when shrinking DEVICES locally).
set -eu

SLOTS="${SLOTS:-200}"
DEVICES="${DEVICES:-250}"
PORT="${PORT:-18080}"
MIN_RATE="${MIN_RATE:-1000}"
ADDR="http://127.0.0.1:$PORT"

workdir="$(mktemp -d)"
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "== building eotorad and loadgen"
go build -o "$workdir/eotorad" ./cmd/eotorad
go build -o "$workdir/loadgen" ./cmd/loadgen

echo "== booting eotorad (lockstep, $DEVICES devices) on $ADDR"
"$workdir/eotorad" -listen "127.0.0.1:$PORT" -devices "$DEVICES" -tick 0 \
    -snapshot "$workdir/snap.json" &
daemon_pid=$!

# Wait for the API to come up (10 s ceiling).
i=0
until curl -fsS "$ADDR/v1/status" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "eotorad did not come up on $ADDR" >&2
        exit 1
    fi
    sleep 0.2
done

echo "== streaming $SLOTS slots through loadgen (gating on shed + degraded)"
"$workdir/loadgen" -addr "$ADDR" -devices "$DEVICES" -slots "$SLOTS" \
    -fail-degraded -fail-shed

echo "== scraping /metrics"
curl -fsS "$ADDR/metrics" >"$workdir/metrics.json"
for want in \
    "\"serve.ticks\": $SLOTS" \
    '"serve.degraded_slots": 0' \
    '"serve.events_shed": 0'; do
    if ! grep -q "$want" "$workdir/metrics.json"; then
        echo "metrics scrape missing '$want':" >&2
        cat "$workdir/metrics.json" >&2
        exit 1
    fi
done
grep -E '"serve\.(ticks|events_ingested|events_applied|degraded_slots|escalations)"' \
    "$workdir/metrics.json" | sed 's/^ */    /'

ingested="$(sed -n 's/.*"serve.events_ingested": \([0-9]*\).*/\1/p' "$workdir/metrics.json")"
rate=$((ingested / SLOTS))
if [ "$rate" -lt "$MIN_RATE" ]; then
    echo "ingest rate $rate events/slot below the $MIN_RATE floor" >&2
    exit 1
fi
echo "    ingest rate: $rate events/slot (floor $MIN_RATE)"

echo "== clean shutdown writes the final snapshot"
kill -TERM "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
if ! grep -q "\"ticks\": $SLOTS" "$workdir/snap.json"; then
    echo "final snapshot missing or at the wrong slot" >&2
    exit 1
fi

# Second leg: the daemon must also boot and stream behind a baseline
# policy (no degradation ladder, no slot budgets). A short run suffices
# — this gates the -policy plumbing end to end, not throughput.
POLICY_SLOTS=20
echo "== booting eotorad (-policy greedy-energy) on $ADDR"
"$workdir/eotorad" -listen "127.0.0.1:$PORT" -devices "$DEVICES" -tick 0 \
    -policy greedy-energy &
daemon_pid=$!
i=0
until curl -fsS "$ADDR/v1/status" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -ge 50 ]; then
        echo "eotorad -policy greedy-energy did not come up on $ADDR" >&2
        exit 1
    fi
    sleep 0.2
done

echo "== streaming $POLICY_SLOTS slots through loadgen"
"$workdir/loadgen" -addr "$ADDR" -devices "$DEVICES" -slots "$POLICY_SLOTS" \
    -fail-degraded -fail-shed

curl -fsS "$ADDR/metrics" >"$workdir/metrics-policy.json"
for want in \
    "\"serve.ticks\": $POLICY_SLOTS" \
    '"serve.events_shed": 0'; do
    if ! grep -q "$want" "$workdir/metrics-policy.json"; then
        echo "baseline-policy metrics scrape missing '$want':" >&2
        cat "$workdir/metrics-policy.json" >&2
        exit 1
    fi
done
kill -TERM "$daemon_pid"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""

echo "serve smoke OK: $SLOTS slots bdma + $POLICY_SLOTS slots greedy-energy, zero shed, zero degraded"
